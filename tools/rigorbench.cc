/**
 * @file
 * rigorbench — command-line front end to the framework.
 *
 *   rigorbench list
 *   rigorbench disasm <workload>
 *   rigorbench run <workload> [options]
 *   rigorbench compare <workload> [options]
 *   rigorbench sequential <workload> [options]
 *   rigorbench profile <workload> [options]
 *   rigorbench suite [options]
 *   rigorbench help
 *
 * Common options:
 *   --tier interp|adaptive   (run only; default interp,
 *                            profile defaults to adaptive)
 *   --invocations N          (default 8)
 *   --iterations N           (default 20)
 *   --size N                 (default: workload's defaultSize)
 *   --seed S                 (default 0xc0ffee)
 *   --jobs N                 (default 1) worker threads; artifacts
 *                            are byte-identical for every N
 *   --jit-threshold N        (default kDefaultJitThreshold)
 *   --target PCT             (sequential only; default 2)
 *   --json FILE              dump the raw run as JSON
 *   --csv FILE               dump per-iteration samples as CSV
 *   --no-noise               disable the measurement-noise model
 *   --quiet                  silence warn()/inform() status output
 *
 * Observability (see docs/OBSERVABILITY.md):
 *   --metrics FILE           write a metrics-registry JSON snapshot
 *   --trace FILE             write a Chrome trace-event JSON
 *                            (Perfetto-loadable, modelled clock)
 *
 * Fault tolerance:
 *   --inject SPEC            inject a fault (repeatable); SPEC is
 *                            kind[:key=value]... with kind one of
 *                            throw|checksum|stall|ramp and keys
 *                            wl=NAME inv=N n=COUNT p=PROB mag=X
 *   --max-retries N          retries per invocation (default 2)
 *   --deadline-ms X          per-invocation modelled-time deadline
 *   --resume FILE            (suite only) persist state after every
 *                            workload and skip completed ones
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/analysis.hh"
#include "harness/envcheck.hh"
#include "harness/fault.hh"
#include "harness/profile.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sequential.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "support/trace.hh"
#include "vm/compiler.hh"

using namespace rigor;

namespace {

struct Options
{
    std::string command;
    std::string workload;
    vm::Tier tier = vm::Tier::Interp;
    /** True once --tier was given (profile defaults differently). */
    bool tierSet = false;
    int invocations = 8;
    int iterations = 20;
    int jobs = 1;
    int64_t size = 0;
    uint64_t seed = 0xc0ffee;
    int jitThreshold = harness::kDefaultJitThreshold;
    double targetPct = 2.0;
    std::string jsonPath;
    std::string csvPath;
    bool noNoise = false;
    bool quiet = false;
    harness::FaultPlan faultPlan;
    int maxRetries = 2;
    double deadlineMs = 0.0;
    std::string resumePath;
    std::string metricsPath;
    std::string tracePath;

    // Observability sinks, shared by every run of the command
    // (not owned; set up in main when requested).
    MetricsRegistry *metrics = nullptr;
    TraceEmitter *trace = nullptr;
};

void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: rigorbench <list|env|disasm|run|compare|"
        "sequential|profile|suite|help> [workload] [options]\n"
        "options: --tier interp|adaptive --invocations N "
        "--iterations N --size N --jobs N\n"
        "         --seed S --jit-threshold N --target PCT "
        "--json FILE --csv FILE --no-noise\n"
        "         --inject SPEC --max-retries N --deadline-ms X "
        "--resume FILE\n"
        "         --metrics FILE --trace FILE --quiet\n");
}

[[noreturn]] void
usage()
{
    printUsage(stderr);
    std::exit(2);
}

/**
 * Strict integer parsing: rejects garbage instead of yielding 0 and
 * overflow instead of silently clamping to LLONG_MAX (strtoll sets
 * errno=ERANGE but still returns a "valid-looking" value, so e.g.
 * --invocations 99999999999999999999 used to be accepted).
 */
int64_t
parseInt(const char *flag, const char *text, int64_t min_value)
{
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0')
        fatal("%s expects an integer, got '%s'", flag, text);
    if (errno == ERANGE)
        fatal("%s out of range: '%s'", flag, text);
    if (v < min_value)
        fatal("%s must be >= %lld, got %lld", flag,
              static_cast<long long>(min_value), v);
    return v;
}

double
parseDouble(const char *flag, const char *text, double min_value)
{
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(text, &end);
    if (end == text || *end != '\0')
        fatal("%s expects a number, got '%s'", flag, text);
    if (errno == ERANGE)
        fatal("%s out of range: '%s'", flag, text);
    if (v < min_value)
        fatal("%s must be >= %g, got %g", flag, min_value, v);
    return v;
}

/** Strict seed parsing (decimal, hex or octal; full uint64 range). */
uint64_t
parseSeed(const char *flag, const char *text)
{
    char *end = nullptr;
    errno = 0;
    uint64_t v = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0')
        fatal("%s expects an integer, got '%s'", flag, text);
    if (errno == ERANGE)
        fatal("%s out of range: '%s'", flag, text);
    return v;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    if (argc < 2)
        usage();
    opt.command = argv[1];
    if (opt.command == "help" || opt.command == "--help" ||
        opt.command == "-h") {
        printUsage(stdout);
        std::exit(0);
    }
    int i = 2;
    if (i < argc && argv[i][0] != '-')
        opt.workload = argv[i++];
    for (; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            printUsage(stdout);
            std::exit(0);
        } else if (a == "--tier") {
            std::string t = next();
            if (t == "interp")
                opt.tier = vm::Tier::Interp;
            else if (t == "adaptive")
                opt.tier = vm::Tier::Adaptive;
            else
                usage();
            opt.tierSet = true;
        } else if (a == "--invocations") {
            opt.invocations = static_cast<int>(
                parseInt("--invocations", next(), 1));
        } else if (a == "--iterations") {
            opt.iterations = static_cast<int>(
                parseInt("--iterations", next(), 1));
        } else if (a == "--size") {
            opt.size = parseInt("--size", next(), 1);
        } else if (a == "--seed") {
            opt.seed = parseSeed("--seed", next());
        } else if (a == "--jobs") {
            opt.jobs =
                static_cast<int>(parseInt("--jobs", next(), 1));
        } else if (a == "--jit-threshold") {
            opt.jitThreshold = static_cast<int>(
                parseInt("--jit-threshold", next(), 1));
        } else if (a == "--target") {
            opt.targetPct = parseDouble("--target", next(), 1e-6);
        } else if (a == "--json") {
            opt.jsonPath = next();
        } else if (a == "--csv") {
            opt.csvPath = next();
        } else if (a == "--no-noise") {
            opt.noNoise = true;
        } else if (a == "--quiet") {
            opt.quiet = true;
        } else if (a == "--metrics") {
            opt.metricsPath = next();
        } else if (a == "--trace") {
            opt.tracePath = next();
        } else if (a == "--inject") {
            opt.faultPlan.add(next());
        } else if (a == "--max-retries") {
            opt.maxRetries = static_cast<int>(
                parseInt("--max-retries", next(), 0));
        } else if (a == "--deadline-ms") {
            opt.deadlineMs = parseDouble("--deadline-ms", next(),
                                         1e-9);
        } else if (a == "--resume") {
            opt.resumePath = next();
        } else {
            usage();
        }
    }
    return opt;
}

harness::RunnerConfig
makeConfig(const Options &opt, vm::Tier tier,
           const harness::FaultInjector *faults)
{
    harness::RunnerConfig cfg;
    cfg.invocations = opt.invocations;
    cfg.iterations = opt.iterations;
    cfg.tier = tier;
    cfg.size = opt.size;
    cfg.seed = opt.seed;
    cfg.jobs = opt.jobs;
    cfg.jitThreshold = opt.jitThreshold;
    cfg.noise.enabled = !opt.noNoise;
    cfg.maxRetries = opt.maxRetries;
    cfg.deadlineMs = opt.deadlineMs;
    cfg.faults = faults;
    cfg.metrics = opt.metrics;
    cfg.trace = opt.trace;
    return cfg;
}

void
dumpOutputs(const Options &opt, const harness::RunResult &run)
{
    if (!opt.jsonPath.empty()) {
        std::ofstream os(opt.jsonPath);
        if (!os)
            fatal("cannot write %s", opt.jsonPath.c_str());
        os << harness::runToJson(run).dump(2) << "\n";
        std::printf("wrote %s\n", opt.jsonPath.c_str());
    }
    if (!opt.csvPath.empty()) {
        std::ofstream os(opt.csvPath);
        if (!os)
            fatal("cannot write %s", opt.csvPath.c_str());
        harness::writeSeriesCsv(os, run);
        std::printf("wrote %s\n", opt.csvPath.c_str());
    }
}

/** Failure/quarantine bookkeeping printed after a degraded run. */
void
printRunFailures(const harness::RunResult &run)
{
    if (run.failures.empty() && !run.quarantined)
        return;
    std::printf("  failures: %zu recorded, %zu invocation(s) "
                "succeeded of %d attempted\n",
                run.failures.size(), run.invocations.size(),
                run.invocationsAttempted);
    for (const auto &f : run.failures)
        std::printf("    inv %d attempt %d [%s]: %s\n", f.invocation,
                    f.attempt, harness::failureKindName(f.kind),
                    f.message.c_str());
    if (run.quarantined)
        std::printf("  QUARANTINED: %s\n",
                    run.quarantineReason.c_str());
}

void
printEstimate(const harness::RunResult &run)
{
    if (run.invocations.empty()) {
        std::printf("%s / %s: no successful invocations\n",
                    run.workload.c_str(), vm::tierName(run.tier));
        printRunFailures(run);
        return;
    }
    auto est = harness::rigorousEstimate(run);
    const auto &ss = est.steadyState;
    std::printf("%s / %s  (%zu invocations x %zu iterations, "
                "size %lld)\n",
                run.workload.c_str(), vm::tierName(run.tier),
                run.invocations.size(),
                run.invocations.front().samples.size(),
                static_cast<long long>(run.size));
    std::printf("  time/iter: %s ms   (%s)\n",
                harness::formatCi(est.ci, 4).c_str(),
                harness::formatCiPercent(est.ci, 4).c_str());
    std::printf("  series: %d flat, %d warmup, %d slowdown, "
                "%d no-steady-state; mean warmup %.1f iters\n",
                ss.flat, ss.warmup, ss.slowdown, ss.noSteadyState,
                ss.meanSteadyStart);
    std::printf("  first invocation: %s\n",
                harness::sparkline(run.invocations.front().times())
                    .c_str());
    printRunFailures(run);
}

int
cmdEnv()
{
    harness::EnvReport report = harness::collectEnvironment();
    std::printf("%s", report.render().c_str());
    std::printf("%d warning(s)\n", report.warningCount());
    return 0;
}

int
cmdList()
{
    Table t({"name", "category", "default size", "description"});
    for (const auto &w : workloads::suite()) {
        t.addRow({w.name, workloads::categoryName(w.category),
                  std::to_string(w.defaultSize), w.description});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdDisasm(const Options &opt)
{
    const auto &spec = workloads::findWorkload(opt.workload);
    vm::Program prog = vm::compileSource(spec.source, spec.name);
    std::printf("%s", prog.module->disassemble().c_str());
    return 0;
}

int
cmdRun(const Options &opt, const harness::FaultInjector *faults)
{
    auto run = harness::runExperiment(
        opt.workload, makeConfig(opt, opt.tier, faults));
    printEstimate(run);
    dumpOutputs(opt, run);
    return run.invocations.empty() ? 1 : 0;
}

int
cmdProfile(const Options &opt)
{
    harness::ProfileConfig pcfg;
    // Profiling is mostly about explaining warmup/JIT behaviour, so
    // the adaptive tier is the default here (run's default stays
    // interp); --tier still overrides.
    pcfg.tier = opt.tierSet ? opt.tier : vm::Tier::Adaptive;
    pcfg.iterations = opt.iterations;
    pcfg.size = opt.size;
    pcfg.seed = opt.seed;
    pcfg.jitThreshold = opt.jitThreshold;
    auto prof = harness::profileWorkload(opt.workload, pcfg);
    std::printf("%s", harness::renderProfile(prof).c_str());
    return 0;
}

int
cmdCompare(const Options &opt, const harness::FaultInjector *faults)
{
    auto interp = harness::runExperiment(
        opt.workload, makeConfig(opt, vm::Tier::Interp, faults));
    auto jit = harness::runExperiment(
        opt.workload, makeConfig(opt, vm::Tier::Adaptive, faults));
    printEstimate(interp);
    printEstimate(jit);
    if (interp.invocations.empty() || jit.invocations.empty())
        return 1;
    auto s = harness::rigorousSpeedup(interp, jit);
    std::printf("speedup (adaptive over interp): %s %s\n",
                harness::formatCi(s.ci, 3).c_str(),
                s.significant ? "(significant)"
                              : "(not significant)");
    return 0;
}

int
cmdSequential(const Options &opt,
              const harness::FaultInjector *faults)
{
    harness::SequentialConfig seq;
    seq.targetRelativeHalfWidth = opt.targetPct / 100.0;
    seq.maxInvocations = std::max(opt.invocations, 8);
    auto res = harness::runSequential(
        opt.workload, makeConfig(opt, opt.tier, faults), seq);
    printEstimate(res.run);
    if (res.run.invocations.empty())
        return 1;
    std::printf("  sequential: %s after %d invocations "
                "(target ±%.1f%%)\n",
                res.converged ? "converged" : "budget exhausted",
                res.invocationsUsed, opt.targetPct);
    std::printf("  width trajectory:");
    for (double w : res.widthTrajectory)
        std::printf(" %.2f%%", 100.0 * w);
    std::printf("\n");
    dumpOutputs(opt, res.run);
    return 0;
}

/**
 * inform()/warn() plus a mirror of the message into the trace as a
 * "log" instant, so suite progress lands next to the spans it
 * narrates. The runner mirrors its own messages the same way
 * (caller-owned mirroring keeps serial and parallel traces
 * byte-identical; a sink cannot, because parallel workers buffer
 * their messages and replay them later).
 */
__attribute__((format(printf, 3, 4))) void
logTraced(const Options &opt, LogLevel level, const char *fmt, ...)
{
    if (opt.quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    if (opt.trace)
        opt.trace->logInstant(logLevelName(level), msg);
    if (level == LogLevel::Warn)
        warn("%s", msg.c_str());
    else
        inform("%s", msg.c_str());
}

void
writeSuiteState(const std::string &path,
                const harness::SuiteState &state)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot write %s", path.c_str());
    os << harness::suiteStateToJson(state).dump(2) << "\n";
}

harness::SuiteState
loadSuiteState(const std::string &path, const Options &opt)
{
    std::ifstream is(path);
    std::stringstream buf;
    buf << is.rdbuf();
    auto state = harness::suiteStateFromJson(Json::parse(buf.str()));
    if (state.seed != opt.seed ||
        state.invocations != opt.invocations ||
        state.iterations != opt.iterations)
        fatal("%s was recorded with different design parameters "
              "(seed/invocations/iterations); refusing to mix "
              "incomparable measurements",
              path.c_str());
    return state;
}

/**
 * Measure one workload on both tiers. Degrades gracefully: failures
 * and quarantines are recorded in the returned state instead of
 * propagating, so one broken workload cannot sink the suite.
 */
harness::SuiteWorkloadState
runSuiteWorkload(const workloads::WorkloadSpec &w, const Options &opt,
                 const harness::FaultInjector *faults)
{
    harness::SuiteWorkloadState ws;
    ws.name = w.name;
    try {
        Options o = opt;
        o.workload = w.name;
        auto interp = harness::runExperiment(
            w.name, makeConfig(o, vm::Tier::Interp, faults));
        auto jit = harness::runExperiment(
            w.name, makeConfig(o, vm::Tier::Adaptive, faults));
        ws.quarantined = interp.quarantined || jit.quarantined;
        ws.failureCount = static_cast<int>(interp.failures.size() +
                                           jit.failures.size());
        ws.modelledMs =
            interp.totalModelledMs() + jit.totalModelledMs();
        if (interp.invocations.size() < 2 ||
            jit.invocations.size() < 2) {
            ws.failed = true;
            return ws;
        }
        ws.interpMs = harness::rigorousEstimate(interp).ci.estimate;
        ws.adaptiveMs = harness::rigorousEstimate(jit).ci.estimate;
        ws.speedup = harness::rigorousSpeedup(interp, jit);
    } catch (const std::exception &e) {
        logTraced(opt, LogLevel::Warn, "workload %s failed: %s",
                  w.name.c_str(), e.what());
        ws.failed = true;
    }
    return ws;
}

int
cmdSuite(const Options &opt, const harness::FaultInjector *faults)
{
    harness::SuiteState state;
    state.seed = opt.seed;
    state.invocations = opt.invocations;
    state.iterations = opt.iterations;

    bool resuming = false;
    if (!opt.resumePath.empty()) {
        std::ifstream probe(opt.resumePath);
        if (probe.good()) {
            state = loadSuiteState(opt.resumePath, opt);
            resuming = true;
            logTraced(opt, LogLevel::Info,
                      "resuming from %s: %zu workload(s) already "
                      "done",
                      opt.resumePath.c_str(), state.workloads.size());
        }
    }

    if (opt.trace)
        opt.trace->beginSpan("suite", "harness");

    // Heartbeat bookkeeping: long sweeps print one progress line per
    // workload so a terminal shows where the suite is and how much
    // modelled time and how many failures have accumulated.
    size_t total = workloads::suite().size();
    size_t done = 0;
    double modelledMsTotal = 0.0;
    int failuresTotal = 0;
    for (const auto &w : workloads::suite()) {
        ++done;
        if (resuming && state.find(w.name)) {
            const auto *ws = state.find(w.name);
            modelledMsTotal += ws->modelledMs;
            failuresTotal += ws->failureCount;
            continue;
        }
        state.workloads.push_back(runSuiteWorkload(w, opt, faults));
        const auto &ws = state.workloads.back();
        modelledMsTotal += ws.modelledMs;
        failuresTotal += ws.failureCount;
        logTraced(opt, LogLevel::Info,
                  "suite [%zu/%zu] %s: %s; %.1f ms modelled, "
                  "%d failure(s) so far",
                  done, total, w.name.c_str(),
                  ws.quarantined ? "quarantined"
                      : ws.failed ? "failed"
                                  : "ok",
                  modelledMsTotal, failuresTotal);
        if (opt.metrics) {
            opt.metrics->gauge("suite.workloads_done")
                .set(static_cast<double>(done));
            opt.metrics->gauge("suite.modelled_ms_total")
                .set(modelledMsTotal);
        }
        if (!opt.resumePath.empty())
            writeSuiteState(opt.resumePath, state);
    }

    if (opt.trace)
        opt.trace->endSpan();

    Table t({"benchmark", "interp ms", "adaptive ms",
             "speedup (95% CI)", "sig"});
    std::vector<harness::SpeedupResult> speedups;
    int degraded = 0;
    for (const auto &w : workloads::suite()) {
        const auto *ws = state.find(w.name);
        if (!ws)
            continue;
        if (ws->failed) {
            t.addRow({ws->name, "-", "-",
                      ws->quarantined ? "(quarantined)" : "(failed)",
                      "-"});
            ++degraded;
            continue;
        }
        speedups.push_back(ws->speedup);
        t.addRow({ws->name, fmtDouble(ws->interpMs, 4),
                  fmtDouble(ws->adaptiveMs, 4),
                  harness::formatCi(ws->speedup.ci, 2),
                  ws->speedup.significant ? "y" : "n"});
        if (ws->quarantined || ws->failureCount > 0)
            ++degraded;
    }
    std::printf("%s", t.render().c_str());
    if (!speedups.empty()) {
        auto geo = harness::geomeanSpeedup(speedups);
        std::printf("geomean speedup: %s\n",
                    harness::formatCi(geo, 2).c_str());
    }

    if (degraded > 0) {
        Table ft({"benchmark", "status", "failures"});
        for (const auto &ws : state.workloads) {
            if (!ws.failed && !ws.quarantined &&
                ws.failureCount == 0)
                continue;
            const char *status = ws.quarantined ? "quarantined"
                : ws.failed                     ? "failed"
                                                : "degraded";
            ft.addRow({ws.name, status,
                       std::to_string(ws.failureCount)});
        }
        std::printf("\nfailure summary (%d of %zu workloads "
                    "affected):\n%s",
                    degraded, state.workloads.size(),
                    ft.render().c_str());
    }

    // Partial results are a success; only a suite where *nothing*
    // could be measured exits nonzero.
    return speedups.empty() ? 1 : 0;
}

/** Flush --metrics / --trace files after the command finished. */
void
writeObservability(const Options &opt)
{
    if (opt.metrics && !opt.metricsPath.empty()) {
        std::ofstream os(opt.metricsPath);
        if (!os)
            fatal("cannot write %s", opt.metricsPath.c_str());
        os << opt.metrics->toJson().dump(2) << "\n";
        std::printf("wrote %s\n", opt.metricsPath.c_str());
    }
    if (opt.trace && !opt.tracePath.empty()) {
        opt.trace->endSpansTo(0);
        std::ofstream os(opt.tracePath);
        if (!os)
            fatal("cannot write %s", opt.tracePath.c_str());
        os << opt.trace->toJson().dump(1) << "\n";
        std::printf("wrote %s\n", opt.tracePath.c_str());
    }
}

int
dispatch(const Options &opt, const harness::FaultInjector *faults)
{
    if (opt.command == "disasm")
        return cmdDisasm(opt);
    if (opt.command == "run")
        return cmdRun(opt, faults);
    if (opt.command == "compare")
        return cmdCompare(opt, faults);
    if (opt.command == "sequential")
        return cmdSequential(opt, faults);
    if (opt.command == "profile")
        return cmdProfile(opt);
    if (opt.command == "suite")
        return cmdSuite(opt, faults);
    usage();
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Options opt = parseArgs(argc, argv);
        if (opt.quiet)
            setQuiet(true);
        harness::FaultInjector injector(opt.faultPlan, opt.seed);
        const harness::FaultInjector *faults =
            opt.faultPlan.empty() ? nullptr : &injector;
        if (opt.command == "list")
            return cmdList();
        if (opt.command == "env")
            return cmdEnv();
        if (opt.workload.empty() && opt.command != "suite")
            usage();

        MetricsRegistry metrics;
        TraceEmitter trace;
        if (!opt.metricsPath.empty())
            opt.metrics = &metrics;
        if (!opt.tracePath.empty())
            opt.trace = &trace;

        int rc = dispatch(opt, faults);
        writeObservability(opt);
        return rc;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
