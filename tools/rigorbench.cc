/**
 * @file
 * rigorbench — command-line front end to the framework.
 *
 *   rigorbench list
 *   rigorbench disasm <workload>
 *   rigorbench run <workload> [options]
 *   rigorbench compare <workload> [options]
 *   rigorbench sequential <workload> [options]
 *   rigorbench suite [options]
 *
 * Common options:
 *   --tier interp|adaptive   (run only; default interp)
 *   --invocations N          (default 8)
 *   --iterations N           (default 20)
 *   --size N                 (default: workload's defaultSize)
 *   --seed S                 (default 0xc0ffee)
 *   --jit-threshold N        (default 4000)
 *   --target PCT             (sequential only; default 2)
 *   --json FILE              dump the raw run as JSON
 *   --csv FILE               dump per-iteration samples as CSV
 *   --no-noise               disable the measurement-noise model
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/analysis.hh"
#include "harness/envcheck.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sequential.hh"
#include "support/logging.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "vm/compiler.hh"

using namespace rigor;

namespace {

struct Options
{
    std::string command;
    std::string workload;
    vm::Tier tier = vm::Tier::Interp;
    int invocations = 8;
    int iterations = 20;
    int64_t size = 0;
    uint64_t seed = 0xc0ffee;
    int jitThreshold = 4000;
    double targetPct = 2.0;
    std::string jsonPath;
    std::string csvPath;
    bool noNoise = false;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: rigorbench <list|env|disasm|run|compare|"
        "sequential|suite> [workload] [options]\n"
        "options: --tier interp|adaptive --invocations N "
        "--iterations N --size N\n"
        "         --seed S --jit-threshold N --target PCT "
        "--json FILE --csv FILE --no-noise\n");
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    if (argc < 2)
        usage();
    opt.command = argv[1];
    int i = 2;
    if (i < argc && argv[i][0] != '-')
        opt.workload = argv[i++];
    for (; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--tier") {
            std::string t = next();
            if (t == "interp")
                opt.tier = vm::Tier::Interp;
            else if (t == "adaptive")
                opt.tier = vm::Tier::Adaptive;
            else
                usage();
        } else if (a == "--invocations") {
            opt.invocations = std::atoi(next());
        } else if (a == "--iterations") {
            opt.iterations = std::atoi(next());
        } else if (a == "--size") {
            opt.size = std::atoll(next());
        } else if (a == "--seed") {
            opt.seed = std::strtoull(next(), nullptr, 0);
        } else if (a == "--jit-threshold") {
            opt.jitThreshold = std::atoi(next());
        } else if (a == "--target") {
            opt.targetPct = std::atof(next());
        } else if (a == "--json") {
            opt.jsonPath = next();
        } else if (a == "--csv") {
            opt.csvPath = next();
        } else if (a == "--no-noise") {
            opt.noNoise = true;
        } else {
            usage();
        }
    }
    return opt;
}

harness::RunnerConfig
makeConfig(const Options &opt, vm::Tier tier)
{
    harness::RunnerConfig cfg;
    cfg.invocations = opt.invocations;
    cfg.iterations = opt.iterations;
    cfg.tier = tier;
    cfg.size = opt.size;
    cfg.seed = opt.seed;
    cfg.jitThreshold = opt.jitThreshold;
    cfg.noise.enabled = !opt.noNoise;
    return cfg;
}

void
dumpOutputs(const Options &opt, const harness::RunResult &run)
{
    if (!opt.jsonPath.empty()) {
        std::ofstream os(opt.jsonPath);
        if (!os)
            fatal("cannot write %s", opt.jsonPath.c_str());
        os << harness::runToJson(run).dump(2) << "\n";
        std::printf("wrote %s\n", opt.jsonPath.c_str());
    }
    if (!opt.csvPath.empty()) {
        std::ofstream os(opt.csvPath);
        if (!os)
            fatal("cannot write %s", opt.csvPath.c_str());
        harness::writeSeriesCsv(os, run);
        std::printf("wrote %s\n", opt.csvPath.c_str());
    }
}

void
printEstimate(const harness::RunResult &run)
{
    auto est = harness::rigorousEstimate(run);
    const auto &ss = est.steadyState;
    std::printf("%s / %s  (%zu invocations x %zu iterations, "
                "size %lld)\n",
                run.workload.c_str(), vm::tierName(run.tier),
                run.invocations.size(),
                run.invocations.front().samples.size(),
                static_cast<long long>(run.size));
    std::printf("  time/iter: %s ms   (%s)\n",
                harness::formatCi(est.ci, 4).c_str(),
                harness::formatCiPercent(est.ci, 4).c_str());
    std::printf("  series: %d flat, %d warmup, %d slowdown, "
                "%d no-steady-state; mean warmup %.1f iters\n",
                ss.flat, ss.warmup, ss.slowdown, ss.noSteadyState,
                ss.meanSteadyStart);
    std::printf("  first invocation: %s\n",
                harness::sparkline(run.invocations.front().times())
                    .c_str());
}

int
cmdEnv()
{
    harness::EnvReport report = harness::collectEnvironment();
    std::printf("%s", report.render().c_str());
    std::printf("%d warning(s)\n", report.warningCount());
    return 0;
}

int
cmdList()
{
    Table t({"name", "category", "default size", "description"});
    for (const auto &w : workloads::suite()) {
        t.addRow({w.name, workloads::categoryName(w.category),
                  std::to_string(w.defaultSize), w.description});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdDisasm(const Options &opt)
{
    const auto &spec = workloads::findWorkload(opt.workload);
    vm::Program prog = vm::compileSource(spec.source, spec.name);
    std::printf("%s", prog.module->disassemble().c_str());
    return 0;
}

int
cmdRun(const Options &opt)
{
    auto run = harness::runExperiment(opt.workload,
                                      makeConfig(opt, opt.tier));
    printEstimate(run);
    dumpOutputs(opt, run);
    return 0;
}

int
cmdCompare(const Options &opt)
{
    auto interp = harness::runExperiment(
        opt.workload, makeConfig(opt, vm::Tier::Interp));
    auto jit = harness::runExperiment(
        opt.workload, makeConfig(opt, vm::Tier::Adaptive));
    printEstimate(interp);
    printEstimate(jit);
    auto s = harness::rigorousSpeedup(interp, jit);
    std::printf("speedup (adaptive over interp): %s %s\n",
                harness::formatCi(s.ci, 3).c_str(),
                s.significant ? "(significant)"
                              : "(not significant)");
    return 0;
}

int
cmdSequential(const Options &opt)
{
    harness::SequentialConfig seq;
    seq.targetRelativeHalfWidth = opt.targetPct / 100.0;
    seq.maxInvocations = std::max(opt.invocations, 8);
    auto res = harness::runSequential(
        opt.workload, makeConfig(opt, opt.tier), seq);
    printEstimate(res.run);
    std::printf("  sequential: %s after %d invocations "
                "(target ±%.1f%%)\n",
                res.converged ? "converged" : "budget exhausted",
                res.invocationsUsed, opt.targetPct);
    std::printf("  width trajectory:");
    for (double w : res.widthTrajectory)
        std::printf(" %.2f%%", 100.0 * w);
    std::printf("\n");
    dumpOutputs(opt, res.run);
    return 0;
}

int
cmdSuite(const Options &opt)
{
    Table t({"benchmark", "interp ms", "adaptive ms",
             "speedup (95% CI)", "sig"});
    std::vector<harness::SpeedupResult> speedups;
    for (const auto &w : workloads::suite()) {
        Options o = opt;
        o.workload = w.name;
        auto interp = harness::runExperiment(
            w.name, makeConfig(o, vm::Tier::Interp));
        auto jit = harness::runExperiment(
            w.name, makeConfig(o, vm::Tier::Adaptive));
        auto ie = harness::rigorousEstimate(interp);
        auto je = harness::rigorousEstimate(jit);
        auto s = harness::rigorousSpeedup(interp, jit);
        speedups.push_back(s);
        t.addRow({w.name, fmtDouble(ie.ci.estimate, 4),
                  fmtDouble(je.ci.estimate, 4),
                  harness::formatCi(s.ci, 2),
                  s.significant ? "y" : "n"});
    }
    std::printf("%s", t.render().c_str());
    auto geo = harness::geomeanSpeedup(speedups);
    std::printf("geomean speedup: %s\n",
                harness::formatCi(geo, 2).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Options opt = parseArgs(argc, argv);
        if (opt.command == "list")
            return cmdList();
        if (opt.command == "env")
            return cmdEnv();
        if (opt.workload.empty() && opt.command != "suite")
            usage();
        if (opt.command == "disasm")
            return cmdDisasm(opt);
        if (opt.command == "run")
            return cmdRun(opt);
        if (opt.command == "compare")
            return cmdCompare(opt);
        if (opt.command == "sequential")
            return cmdSequential(opt);
        if (opt.command == "suite")
            return cmdSuite(opt);
        usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
