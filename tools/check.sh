#!/usr/bin/env bash
# Build and test both the regular and the ASan+UBSan configurations.
# The sanitizer pass matters most for the fault-tolerance error paths
# (injected faults, retries, quarantine), which normal runs rarely hit.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== regular build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== sanitizer build (ASan+UBSan) =="
cmake -B build-asan -S . -DRIGOR_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "all checks passed"
