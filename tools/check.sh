#!/usr/bin/env bash
# Build and test both the regular and the ASan+UBSan configurations.
# The sanitizer pass matters most for the fault-tolerance error paths
# (injected faults, retries, quarantine), which normal runs rarely hit.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== regular build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== sanitizer build (ASan+UBSan) =="
cmake -B build-asan -S . -DRIGOR_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "== switch-fallback dispatch build (-DRIGOR_NO_COMPUTED_GOTO) =="
# The threaded tier's computed-goto loop has a portable switch twin;
# both must build warning-free and produce byte-identical artifacts
# (the *model* charges dispatch costs, not the host dispatch
# mechanism).
cmake -B build-nocg -S . \
    -DCMAKE_CXX_FLAGS="-DRIGOR_NO_COMPUTED_GOTO" >/dev/null
cmake --build build-nocg -j "$jobs" --target rigorbench

echo "== parallel determinism (--jobs 4 vs --jobs 1, every tier) =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
for tier in interp adaptive threaded; do
    for n in 1 4; do
        ./build/tools/rigorbench run nbody --tier "$tier" \
            --invocations 6 --iterations 5 \
            --jobs "$n" --inject checksum:inv=2:n=1 \
            --json "$tmp/j$n.json" --metrics "$tmp/m$n.json" \
            --trace "$tmp/t$n.json" --quiet >/dev/null 2>&1
    done
    cmp "$tmp/j1.json" "$tmp/j4.json"
    cmp "$tmp/m1.json" "$tmp/m4.json"
    cmp "$tmp/t1.json" "$tmp/t4.json"
    # ... and across the dispatch mechanisms.
    ./build-nocg/tools/rigorbench run nbody --tier "$tier" \
        --invocations 6 --iterations 5 \
        --jobs 1 --inject checksum:inv=2:n=1 \
        --json "$tmp/jn.json" --quiet >/dev/null 2>&1
    cmp "$tmp/j1.json" "$tmp/jn.json"
done

echo "== interrupt/resume smoke (SIGTERM mid-suite, byte-identity) =="
bash tests/interrupt_resume_test.sh ./build/tools/rigorbench
bash tests/interrupt_resume_test.sh ./build-asan/tools/rigorbench

echo "== archive/compare/gate smoke (false + true positive) =="
bash tests/archive_gate_test.sh ./build/tools/rigorbench
bash tests/archive_gate_test.sh ./build-asan/tools/rigorbench

echo "== explain smoke (attribution, byte-identity, gate --explain) =="
bash tests/explain_cli_test.sh ./build/tools/rigorbench
bash tests/explain_cli_test.sh ./build-asan/tools/rigorbench

echo "== tier smoke (three tiers, cross-tier compare, rejection) =="
bash tests/tier_roundtrip_test.sh ./build/tools/rigorbench
bash tests/tier_roundtrip_test.sh ./build-asan/tools/rigorbench
bash tests/tier_roundtrip_test.sh ./build-nocg/tools/rigorbench

echo "== crash torture (io:* crash sweep, ENOSPC, locks, fsck) =="
bash tests/crash_torture_test.sh ./build/tools/rigorbench
bash tests/crash_torture_test.sh ./build-asan/tools/rigorbench

echo "== serve daemon smoke (multi-tenant byte-identity, drain) =="
bash tests/serve_smoke_test.sh ./build/tools/rigorbench
bash tests/serve_smoke_test.sh ./build-asan/tools/rigorbench

echo "all checks passed"
