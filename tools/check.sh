#!/usr/bin/env bash
# Build and test both the regular and the ASan+UBSan configurations.
# The sanitizer pass matters most for the fault-tolerance error paths
# (injected faults, retries, quarantine), which normal runs rarely hit.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== regular build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== sanitizer build (ASan+UBSan) =="
cmake -B build-asan -S . -DRIGOR_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "== parallel determinism (--jobs 4 vs --jobs 1) =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
for n in 1 4; do
    ./build/tools/rigorbench run nbody --invocations 6 --iterations 5 \
        --jobs "$n" --inject checksum:inv=2:n=1 \
        --json "$tmp/j$n.json" --metrics "$tmp/m$n.json" \
        --trace "$tmp/t$n.json" --quiet >/dev/null 2>&1
done
cmp "$tmp/j1.json" "$tmp/j4.json"
cmp "$tmp/m1.json" "$tmp/m4.json"
cmp "$tmp/t1.json" "$tmp/t4.json"

echo "== interrupt/resume smoke (SIGTERM mid-suite, byte-identity) =="
bash tests/interrupt_resume_test.sh ./build/tools/rigorbench
bash tests/interrupt_resume_test.sh ./build-asan/tools/rigorbench

echo "== archive/compare/gate smoke (false + true positive) =="
bash tests/archive_gate_test.sh ./build/tools/rigorbench
bash tests/archive_gate_test.sh ./build-asan/tools/rigorbench

echo "== explain smoke (attribution, byte-identity, gate --explain) =="
bash tests/explain_cli_test.sh ./build/tools/rigorbench
bash tests/explain_cli_test.sh ./build-asan/tools/rigorbench

echo "all checks passed"
