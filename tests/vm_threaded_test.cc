/**
 * @file
 * Direct-threaded tier tests: eager one-shot quickening, super-
 * instruction fusion and its one-bytecode accounting, guard-failure
 * deoptimization to the generic path, tier-name (de)serialization,
 * dispatch accounting, cross-tier result agreement and per-invocation
 * determinism.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "vm/compiler.hh"
#include "vm/interp.hh"

namespace rigor {
namespace vm {
namespace {

/** Observer that records event counts for assertions. */
class RecordingObserver : public ExecutionObserver
{
  public:
    void
    onBytecode(Op op, uint32_t uops) override
    {
        ++bytecodes;
        totalUops += uops;
        if (op >= Op::FirstQuickened)
            ++quickenedBytecodes;
    }
    void onDispatch(Op) override { ++dispatches; }
    void
    onJitCompile(uint32_t, uint64_t cost) override
    {
        ++compiles;
        compileUops += cost;
    }
    void onGuardFailure(Op) override { ++guardFailures; }

    uint64_t bytecodes = 0;
    uint64_t quickenedBytecodes = 0;
    uint64_t totalUops = 0;
    uint64_t dispatches = 0;
    uint64_t compiles = 0;
    uint64_t compileUops = 0;
    uint64_t guardFailures = 0;
};

/**
 * `(s + i) + i` yields LoadFast;LoadFast;Add;LoadFast;Add, so the
 * quickener fuses one LoadFastLoadFast *and* one LoadFastBinaryAdd
 * per loop body.
 */
const char *kFusionLoop =
    "def run(n):\n"
    "    s = 0\n"
    "    i = 0\n"
    "    while i < n:\n"
    "        s = (s + i) + i\n"
    "        i = i + 1\n"
    "    return s\n";

InterpConfig
threadedConfig()
{
    InterpConfig cfg;
    cfg.tier = Tier::Threaded;
    cfg.dispatchUops = 1;  // what the runner sets for this tier
    return cfg;
}

TEST(Threaded, TierNamesRoundTripAndRejectUnknown)
{
    for (Tier t : {Tier::Interp, Tier::Adaptive, Tier::Threaded})
        EXPECT_EQ(tierFromName(tierName(t)), t);
    EXPECT_THROW(tierFromName("turbo"), FatalError);
    EXPECT_THROW(tierFromName(""), FatalError);
}

TEST(Threaded, QuickensEagerlyOncePerCodeObject)
{
    Program prog = compileSource(kFusionLoop);
    InterpConfig cfg = threadedConfig();
    cfg.jitThreshold = 1;  // must be ignored: no warmup counter
    Interp interp(prog, cfg);
    interp.runModule();
    uint64_t afterModule = interp.stats().jitCompiles;
    EXPECT_GE(afterModule, 1u);  // the module code object

    Value r = interp.callGlobal("run", {Value::makeInt(100)});
    EXPECT_EQ(r.asInt(), 100LL * 99);  // sum of 2i, i in [0, 100)
    uint64_t afterFirst = interp.stats().jitCompiles;
    EXPECT_EQ(afterFirst, afterModule + 1);  // run's code object

    // Re-running quickens nothing new and never re-quickens.
    interp.callGlobal("run", {Value::makeInt(5000)});
    EXPECT_EQ(interp.stats().jitCompiles, afterFirst);
}

TEST(Threaded, SuperinstructionsFuseAndAccountAsOneBytecode)
{
    Program prog = compileSource(kFusionLoop);
    RecordingObserver obs;
    Interp interp(prog, threadedConfig(), &obs);
    interp.runModule();
    interp.callGlobal("run", {Value::makeInt(1000)});

    const auto &st = interp.stats();
    auto countOf = [&](Op op) {
        return st.perOp[static_cast<size_t>(op)];
    };
    EXPECT_GE(countOf(Op::LoadFastLoadFast), 1000u);
    EXPECT_GE(countOf(Op::LoadFastBinaryAdd), 1000u);
    // Int-only operands: the fused add's guard never fails.
    EXPECT_EQ(st.guardFailures, 0u);

    // A fused pair is one bytecode and one dispatch: the threaded
    // run must execute strictly fewer bytecodes than the baseline
    // interpreter does for the same work.
    Interp base(prog);
    base.runModule();
    base.callGlobal("run", {Value::makeInt(1000)});
    EXPECT_LT(st.bytecodes, base.stats().bytecodes);
    // Threaded code is still dispatched (unlike adaptive compiled
    // code): every bytecode comes with a dispatch event.
    EXPECT_EQ(obs.dispatches, obs.bytecodes);
    EXPECT_GE(obs.compiles, 1u);
    EXPECT_GT(obs.compileUops, 0u);
}

TEST(Threaded, GuardFailureDeoptsToGenericPath)
{
    // Float operands defeat the small-int fast path of the fused
    // add; the handler must fall back to the generic binary-op and
    // still produce the right value.
    const char *src =
        "def run(n):\n"
        "    a = 0.5\n"
        "    s = 0.0\n"
        "    i = 0\n"
        "    while i < n:\n"
        "        s = (s + a) + a\n"
        "        i = i + 1\n"
        "    return s\n";
    Program prog = compileSource(src);
    Interp interp(prog, threadedConfig());
    interp.runModule();
    Value r = interp.callGlobal("run", {Value::makeInt(200)});
    ASSERT_TRUE(r.isFloat());
    EXPECT_DOUBLE_EQ(r.asFloat(), 200.0);
    const auto &st = interp.stats();
    EXPECT_GE(st.guardFailures, 200u);
    EXPECT_GE(st.perOpGuards[static_cast<size_t>(
                  Op::LoadFastBinaryAdd)],
              200u);
}

TEST(Threaded, AgreesWithInterpOnBranchyCode)
{
    // Branches, a loop join after if/else, string building and an
    // exercised except handler: fusing across any of these jump
    // targets would corrupt the value stack and change the result.
    const char *src =
        "def run(n):\n"
        "    s = 0\n"
        "    txt = ''\n"
        "    i = 0\n"
        "    while i < n:\n"
        "        if i % 3 == 0:\n"
        "            s = s + i\n"
        "        else:\n"
        "            s = s - 1\n"
        "        if i % 7 == 0:\n"
        "            txt = txt + 'x'\n"
        "        try:\n"
        "            s = s + 10 // (i % 5 - 2)\n"
        "        except ZeroDivisionError:\n"
        "            s = s + 1\n"
        "        i = i + 1\n"
        "    return s * 1000 + len(txt)\n";
    Program prog = compileSource(src);

    Interp base(prog);
    base.runModule();
    Value expect = base.callGlobal("run", {Value::makeInt(500)});

    Interp thr(prog, threadedConfig());
    thr.runModule();
    Value got = thr.callGlobal("run", {Value::makeInt(500)});
    EXPECT_EQ(got.asInt(), expect.asInt());
}

TEST(Threaded, CheaperThanInterpOnHotCode)
{
    Program prog = compileSource(kFusionLoop);
    Interp base(prog);  // dispatchUops 6, no quickening
    base.runModule();
    base.callGlobal("run", {Value::makeInt(20000)});

    Interp thr(prog, threadedConfig());
    thr.runModule();
    thr.callGlobal("run", {Value::makeInt(20000)});

    EXPECT_LT(thr.stats().uops, base.stats().uops);
}

TEST(Threaded, DeterministicAcrossInvocations)
{
    Program prog = compileSource(kFusionLoop);
    InterpStats runs[2];
    for (auto &st : runs) {
        Interp interp(prog, threadedConfig());
        interp.runModule();
        interp.callGlobal("run", {Value::makeInt(3000)});
        st = interp.stats();
    }
    EXPECT_EQ(runs[0].bytecodes, runs[1].bytecodes);
    EXPECT_EQ(runs[0].uops, runs[1].uops);
    EXPECT_EQ(runs[0].jitCompiles, runs[1].jitCompiles);
    EXPECT_EQ(runs[0].jitCompileUops, runs[1].jitCompileUops);
    EXPECT_EQ(runs[0].perOp, runs[1].perOp);
    EXPECT_EQ(runs[0].perOpUops, runs[1].perOpUops);
}

} // namespace
} // namespace vm
} // namespace rigor
