/**
 * @file
 * Profile-subsystem tests: opcode accounting must add up, tier split
 * must reflect where execution actually ran, and the rendered report
 * must contain the advertised tables.
 */

#include <gtest/gtest.h>

#include "harness/profile.hh"
#include "vm/code.hh"

namespace rigor {
namespace harness {
namespace {

ProfileConfig
smallConfig(vm::Tier tier)
{
    ProfileConfig cfg;
    cfg.tier = tier;
    cfg.iterations = 4;
    cfg.size = workloads::findWorkload("sieve").testSize;
    return cfg;
}

TEST(Profile, OpcodeAccountingAddsUp)
{
    ProfileResult p =
        profileWorkload("sieve", smallConfig(vm::Tier::Interp));
    ASSERT_FALSE(p.ops.empty());

    uint64_t count_sum = 0, uop_sum = 0;
    double pct_sum = 0.0;
    for (const auto &e : p.ops) {
        EXPECT_GT(e.count, 0u);
        // Interp tier dispatches every executed bytecode.
        EXPECT_EQ(e.dispatched, e.count);
        count_sum += e.count;
        uop_sum += e.uops;
        pct_sum += e.uopsPercent;
    }
    EXPECT_EQ(count_sum, p.totalBytecodes);
    EXPECT_EQ(uop_sum, p.totalUops);
    EXPECT_NEAR(pct_sum, 100.0, 1e-6);
    EXPECT_EQ(p.jitCompiles, 0u);
    // Sorted hottest-first by uops.
    for (size_t i = 1; i < p.ops.size(); ++i)
        EXPECT_GE(p.ops[i - 1].uops, p.ops[i].uops);
}

TEST(Profile, AdaptiveTierShowsJitActivity)
{
    auto cfg = smallConfig(vm::Tier::Adaptive);
    cfg.jitThreshold = 16;
    ProfileResult p = profileWorkload("sieve", cfg);
    EXPECT_GT(p.jitCompiles, 0u);
    // At least one opcode must have run mostly in compiled code
    // (executed without an interpreter dispatch).
    bool saw_jit_resident = false;
    for (const auto &e : p.ops)
        if (e.dispatched < e.count)
            saw_jit_resident = true;
    EXPECT_TRUE(saw_jit_resident);
}

TEST(Profile, SiteTablesAreAttributed)
{
    ProfileResult p =
        profileWorkload("sieve", smallConfig(vm::Tier::Interp));
    ASSERT_FALSE(p.branchSites.empty());
    ASSERT_FALSE(p.allocSites.empty());
    for (const auto &b : p.branchSites) {
        EXPECT_FALSE(b.location.empty());
        EXPECT_LE(b.taken, b.count);
    }
    for (const auto &a : p.allocSites) {
        EXPECT_FALSE(a.location.empty());
        EXPECT_GT(a.count, 0u);
    }
    // Sorted by count / bytes respectively.
    for (size_t i = 1; i < p.branchSites.size(); ++i)
        EXPECT_GE(p.branchSites[i - 1].count, p.branchSites[i].count);
    for (size_t i = 1; i < p.allocSites.size(); ++i)
        EXPECT_GE(p.allocSites[i - 1].bytes, p.allocSites[i].bytes);
}

TEST(Profile, DeterministicForFixedSeed)
{
    auto cfg = smallConfig(vm::Tier::Adaptive);
    ProfileResult a = profileWorkload("sieve", cfg);
    ProfileResult b = profileWorkload("sieve", cfg);
    EXPECT_EQ(a.totalBytecodes, b.totalBytecodes);
    EXPECT_EQ(a.totalUops, b.totalUops);
    EXPECT_EQ(renderProfile(a), renderProfile(b));
}

TEST(Profile, RenderContainsTables)
{
    ProfileResult p =
        profileWorkload("sieve", smallConfig(vm::Tier::Interp));
    std::string out = renderProfile(p, 5);
    EXPECT_NE(out.find("profile: sieve / interp"), std::string::npos);
    EXPECT_NE(out.find("% uops"), std::string::npos);
    EXPECT_NE(out.find("top branch sites"), std::string::npos);
    EXPECT_NE(out.find("top allocation sites"), std::string::npos);
    EXPECT_NE(out.find(vm::opName(p.ops[0].op)), std::string::npos);
}

} // namespace
} // namespace harness
} // namespace rigor
