/**
 * @file
 * Metrics-registry tests: registration, stable references, histogram
 * bucketing and the JSON snapshot schema.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "support/metrics.hh"

namespace rigor {
namespace {

TEST(Metrics, CounterIncrementsAndIsStable)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("a.events");
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    // Second lookup resolves to the same metric.
    EXPECT_EQ(&reg.counter("a.events"), &c);
    EXPECT_EQ(reg.counterValue("a.events"), 42u);
    EXPECT_EQ(reg.counterValue("never.registered"), 0u);
}

TEST(Metrics, GaugeLastWriteWins)
{
    MetricsRegistry reg;
    Gauge &g = reg.gauge("depth");
    g.set(3.5);
    g.set(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), -1.0);
    EXPECT_EQ(&reg.gauge("depth"), &g);
}

TEST(Metrics, HistogramBucketing)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("ms", {1.0, 10.0, 100.0});
    h.observe(0.5);    // <= 1
    h.observe(1.0);    // <= 1 (bounds are inclusive)
    h.observe(5.0);    // <= 10
    h.observe(99.0);   // <= 100
    h.observe(1000.0); // +inf overflow
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 1105.5);
    ASSERT_EQ(h.bucketCounts().size(), 4u);
    EXPECT_EQ(h.bucketCounts()[0], 2u);
    EXPECT_EQ(h.bucketCounts()[1], 1u);
    EXPECT_EQ(h.bucketCounts()[2], 1u);
    EXPECT_EQ(h.bucketCounts()[3], 1u);
    // Re-registration ignores the (different) bounds argument.
    EXPECT_EQ(&reg.histogram("ms", {5.0}), &h);
}

TEST(Metrics, HistogramRejectsBadBounds)
{
    EXPECT_THROW(Histogram({}), PanicError);
    EXPECT_THROW(Histogram({1.0, 1.0}), PanicError);
    EXPECT_THROW(Histogram({2.0, 1.0}), PanicError);
}

TEST(Metrics, ExponentialBuckets)
{
    auto b = MetricsRegistry::exponentialBuckets(0.5, 2.0, 4);
    ASSERT_EQ(b.size(), 4u);
    EXPECT_DOUBLE_EQ(b[0], 0.5);
    EXPECT_DOUBLE_EQ(b[3], 4.0);
    EXPECT_THROW(MetricsRegistry::exponentialBuckets(0.0, 2.0, 4),
                 PanicError);
    EXPECT_THROW(MetricsRegistry::exponentialBuckets(1.0, 1.0, 4),
                 PanicError);
}

TEST(Metrics, KindCollisionPanics)
{
    MetricsRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.gauge("x"), PanicError);
    EXPECT_THROW(reg.histogram("x", {1.0}), PanicError);
    reg.gauge("y");
    EXPECT_THROW(reg.counter("y"), PanicError);
}

TEST(Metrics, JsonSnapshotSchema)
{
    MetricsRegistry reg;
    reg.counter("c").inc(7);
    reg.gauge("g").set(2.5);
    reg.histogram("h", {1.0, 10.0}).observe(3.0);

    // Round-trip through the serializer to prove well-formedness.
    Json doc = Json::parse(reg.toJson().dump(2));
    EXPECT_EQ(doc.at("counters").at("c").asInt(), 7);
    EXPECT_DOUBLE_EQ(doc.at("gauges").at("g").asDouble(), 2.5);
    const Json &h = doc.at("histograms").at("h");
    EXPECT_EQ(h.at("count").asInt(), 1);
    EXPECT_DOUBLE_EQ(h.at("sum").asDouble(), 3.0);
    ASSERT_EQ(h.at("buckets").size(), 3u);
    EXPECT_DOUBLE_EQ(h.at("buckets").at(0).at("le").asDouble(), 1.0);
    EXPECT_EQ(h.at("buckets").at(0).at("count").asInt(), 0);
    EXPECT_EQ(h.at("buckets").at(1).at("count").asInt(), 1);
    EXPECT_EQ(h.at("buckets").at(2).at("le").asString(), "+inf");
}

} // namespace
} // namespace rigor
