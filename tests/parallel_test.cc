/**
 * @file
 * Parallel-execution tests: a --jobs N run must produce artifacts
 * (report JSON, metrics snapshot, trace document, log output) that
 * are byte-identical to a serial run, including under injected
 * faults, misspeculation redo and quarantine; plus thread-safety
 * stress tests for the shared MetricsRegistry.
 */

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "harness/fault.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace rigor {
namespace harness {
namespace {

RunnerConfig
baseConfig(int jobs, MetricsRegistry *metrics, TraceEmitter *trace)
{
    RunnerConfig cfg;
    cfg.invocations = 6;
    cfg.iterations = 5;
    cfg.tier = vm::Tier::Interp;
    cfg.seed = 0xabc;
    cfg.jobs = jobs;
    cfg.size = workloads::findWorkload("sieve").testSize;
    cfg.metrics = metrics;
    cfg.trace = trace;
    return cfg;
}

/** Every artifact of one run, serialized for byte comparison. */
struct Artifacts
{
    std::string report;
    std::string metrics;
    std::string trace;
    std::string logs;
};

/**
 * Run the workload at the given job count and serialize everything.
 * Log output is captured through the process sink so the two runs'
 * message streams can be compared too.
 */
Artifacts
runWithJobs(const std::string &workload, int jobs,
            const FaultPlan *plan)
{
    MetricsRegistry reg;
    TraceEmitter tr;
    auto cfg = baseConfig(jobs, &reg, &tr);
    FaultInjector inj(plan ? *plan : FaultPlan(), cfg.seed);
    if (plan)
        cfg.faults = &inj;

    Artifacts a;
    LogSink prev = setLogSink(
        [&a](LogLevel level, const std::string &msg) {
            a.logs += logLevelName(level);
            a.logs += ": ";
            a.logs += msg;
            a.logs += "\n";
        });
    RunResult run = runExperiment(workload, cfg);
    setLogSink(std::move(prev));

    a.report = runToJson(run).dump(2);
    a.metrics = reg.toJson().dump(2);
    a.trace = tr.toJson().dump(1);
    return a;
}

void
expectIdentical(const Artifacts &serial, const Artifacts &parallel)
{
    EXPECT_EQ(serial.report, parallel.report);
    EXPECT_EQ(serial.metrics, parallel.metrics);
    EXPECT_EQ(serial.trace, parallel.trace);
    EXPECT_EQ(serial.logs, parallel.logs);
}

TEST(Parallel, CleanRunIsByteIdenticalToSerial)
{
    Artifacts serial = runWithJobs("sieve", 1, nullptr);
    Artifacts parallel = runWithJobs("sieve", 4, nullptr);
    expectIdentical(serial, parallel);
    // Sanity: the run measured something.
    EXPECT_NE(serial.report.find("invocations"), std::string::npos);
}

TEST(Parallel, MoreJobsThanInvocationsIsByteIdentical)
{
    Artifacts serial = runWithJobs("sieve", 1, nullptr);
    Artifacts parallel = runWithJobs("sieve", 16, nullptr);
    expectIdentical(serial, parallel);
}

TEST(Parallel, FaultyRunWithRetriesIsByteIdenticalToSerial)
{
    FaultPlan plan;
    plan.add("throw:inv=1:n=1");
    plan.add("stall:inv=3:n=1:mag=4");
    Artifacts serial = runWithJobs("sieve", 1, &plan);
    Artifacts parallel = runWithJobs("sieve", 4, &plan);
    expectIdentical(serial, parallel);
    EXPECT_NE(serial.logs.find("attempt 0 failed"),
              std::string::npos);
}

// A checksum-corrupting fault makes a speculatively-executed slot's
// locally-successful result fail the committer's cross-invocation
// check, forcing the in-line redo path. The redo must replay the
// slot exactly as a serial run would have handled it.
TEST(Parallel, MisspeculatedChecksumRedoIsByteIdenticalToSerial)
{
    FaultPlan plan;
    plan.add("checksum:inv=2:n=1");
    Artifacts serial = runWithJobs("sieve", 1, &plan);
    Artifacts parallel = runWithJobs("sieve", 4, &plan);
    expectIdentical(serial, parallel);
    EXPECT_NE(serial.logs.find("checksum differs across invocations"),
              std::string::npos);
}

TEST(Parallel, QuarantineIsByteIdenticalToSerial)
{
    // Every invocation of every attempt throws: the workload hits the
    // consecutive-failure quarantine threshold. The committer must
    // stop the ordered stream at the same invocation a serial run
    // does, and the discarded in-flight slots must leave no residue
    // in any artifact.
    FaultPlan plan;
    plan.add("throw:n=1000");
    Artifacts serial = runWithJobs("sieve", 1, &plan);
    Artifacts parallel = runWithJobs("sieve", 4, &plan);
    expectIdentical(serial, parallel);
    EXPECT_NE(serial.logs.find("quarantined"), std::string::npos);
}

TEST(Parallel, ExtendContinuesTheSerialSequence)
{
    // Growing a run in batches (the sequential-stopping pattern) must
    // land on the same invocations whatever the job count.
    auto grow = [](int jobs) {
        auto cfg = baseConfig(jobs, nullptr, nullptr);
        const auto &spec = workloads::findWorkload("sieve");
        RunResult run;
        run.workload = spec.name;
        run.tier = cfg.tier;
        extendExperiment(spec, cfg, run, 3);
        extendExperiment(spec, cfg, run, 4);
        return runToJson(run).dump(2);
    };
    EXPECT_EQ(grow(1), grow(4));
}

TEST(Parallel, SharedRegistryStressTotalsAreExact)
{
    MetricsRegistry reg;
    constexpr int kThreads = 8;
    constexpr int kIters = 5000;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, &go, t]() {
            while (!go.load())
                std::this_thread::yield();
            // Shared metrics plus a thread-private name, so lookups
            // race with creation as well as with updates.
            Counter &mine = reg.counter(
                "stress.private." + std::to_string(t));
            for (int i = 0; i < kIters; ++i) {
                reg.counter("stress.shared").inc();
                mine.inc();
                reg.gauge("stress.gauge")
                    .set(static_cast<double>(i));
                reg.histogram("stress.hist", {1.0, 8.0, 64.0})
                    .observe(static_cast<double>(i % 100));
            }
        });
    }
    go.store(true);
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(reg.counterValue("stress.shared"),
              static_cast<uint64_t>(kThreads) * kIters);
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(reg.counterValue("stress.private." +
                                   std::to_string(t)),
                  static_cast<uint64_t>(kIters));
    Histogram &h = reg.histogram("stress.hist", {1.0, 8.0, 64.0});
    EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kIters);
    uint64_t bucketTotal = 0;
    for (uint64_t c : h.bucketCounts())
        bucketTotal += c;
    EXPECT_EQ(bucketTotal, h.count());
    double g = reg.gauge("stress.gauge").value();
    EXPECT_GE(g, 0.0);
    EXPECT_LT(g, static_cast<double>(kIters));
}

TEST(Parallel, RegistryMergeReplaysBufferedObservations)
{
    // The serial reference: observe everything into one histogram.
    MetricsRegistry serial;
    Histogram &hs = serial.histogram("h", {1.0, 10.0});
    for (double v : {0.1, 0.2, 0.3, 5.0, 50.0})
        hs.observe(v);

    // Two buffered worker registries merged in order must reproduce
    // the serial sum bit for bit (summation order is preserved by
    // the replay, so floating-point non-associativity cannot bite).
    MetricsRegistry main;
    MetricsRegistry w1(true), w2(true);
    Histogram &h1 = w1.histogram("h", {1.0, 10.0});
    h1.observe(0.1);
    h1.observe(0.2);
    h1.observe(0.3);
    w1.counter("c").inc(2);
    Histogram &h2 = w2.histogram("h", {1.0, 10.0});
    h2.observe(5.0);
    h2.observe(50.0);
    w2.counter("c").inc(3);
    w2.gauge("g").set(7.5);
    main.merge(w1);
    main.merge(w2);

    EXPECT_EQ(main.toJson().at("histograms").dump(2),
              serial.toJson().at("histograms").dump(2));
    EXPECT_EQ(main.counterValue("c"), 5u);
    EXPECT_DOUBLE_EQ(main.gauge("g").value(), 7.5);
}

TEST(Parallel, TraceAppendReplaysClockArithmetic)
{
    // Serial reference: advances and events interleaved directly.
    TraceEmitter serial;
    serial.advanceMs(0.1);
    serial.instant("a", "t");
    serial.advanceMs(0.2);
    serial.beginSpan("s", "t");
    serial.advanceMs(0.3);
    serial.endSpan();

    // Same operations recorded in a buffered emitter, then appended.
    TraceEmitter main;
    TraceEmitter sub(true);
    main.advanceMs(0.1);
    main.instant("a", "t");
    sub.advanceMs(0.2);
    sub.beginSpan("s", "t");
    sub.advanceMs(0.3);
    sub.endSpan();
    main.append(std::move(sub));

    EXPECT_EQ(main.toJson().dump(1), serial.toJson().dump(1));
    // Appending a non-buffered or still-open emitter is a bug.
    TraceEmitter plain;
    EXPECT_THROW(main.append(std::move(plain)), PanicError);
    TraceEmitter open(true);
    open.beginSpan("x", "t");
    EXPECT_THROW(main.append(std::move(open)), PanicError);
}

} // namespace
} // namespace harness
} // namespace rigor
