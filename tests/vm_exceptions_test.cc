/**
 * @file
 * Exception-handling tests: try/except control flow, raise and
 * assert statements, unwinding across frames, stack restoration,
 * nested handlers, and interaction with loops and the adaptive tier.
 */

#include <gtest/gtest.h>

#include "vm/compiler.hh"
#include "vm/interp.hh"

namespace rigor {
namespace vm {
namespace {

std::unique_ptr<Interp>
run(const std::string &src, InterpConfig cfg = {})
{
    static std::vector<std::unique_ptr<Program>> keep_alive;
    keep_alive.push_back(
        std::make_unique<Program>(compileSource(src)));
    auto interp = std::make_unique<Interp>(*keep_alive.back(), cfg);
    interp->runModule();
    return interp;
}

int64_t
globalInt(Interp &in, const std::string &name)
{
    Value v;
    EXPECT_TRUE(in.getGlobal(name, v)) << "missing global " << name;
    return v.isInt() ? v.asInt() : -999;
}

TEST(Exceptions, BasicTryExcept)
{
    auto in = run("x = 0\n"
                  "try:\n"
                  "    x = 1\n"
                  "    raise 'boom'\n"
                  "    x = 2\n"
                  "except:\n"
                  "    x = x + 10\n");
    EXPECT_EQ(globalInt(*in, "x"), 11);
}

TEST(Exceptions, NoExceptionSkipsHandler)
{
    auto in = run("x = 0\n"
                  "try:\n"
                  "    x = 1\n"
                  "except:\n"
                  "    x = 99\n");
    EXPECT_EQ(globalInt(*in, "x"), 1);
}

TEST(Exceptions, RuntimeErrorsAreCatchable)
{
    auto in = run("def probe(fn):\n"
                  "    try:\n"
                  "        fn()\n"
                  "        return 0\n"
                  "    except:\n"
                  "        return 1\n"
                  "def div():\n"
                  "    return 1 // 0\n"
                  "def key():\n"
                  "    return {}['missing']\n"
                  "def idx():\n"
                  "    return [1][5]\n"
                  "def attr():\n"
                  "    return (1).missing\n"
                  "a = probe(div)\n"
                  "b = probe(key)\n"
                  "c = probe(idx)\n");
    EXPECT_EQ(globalInt(*in, "a"), 1);
    EXPECT_EQ(globalInt(*in, "b"), 1);
    EXPECT_EQ(globalInt(*in, "c"), 1);
}

TEST(Exceptions, PropagatesAcrossFrames)
{
    auto in = run("def deep(n):\n"
                  "    if n == 0:\n"
                  "        raise 'bottom'\n"
                  "    return deep(n - 1)\n"
                  "result = 0\n"
                  "try:\n"
                  "    deep(10)\n"
                  "    result = 1\n"
                  "except:\n"
                  "    result = 2\n");
    EXPECT_EQ(globalInt(*in, "result"), 2);
}

TEST(Exceptions, UncaughtEscapesToHost)
{
    EXPECT_THROW(run("raise 'kaboom'\n"), VmError);
    try {
        run("raise 'specific message'\n");
        FAIL() << "expected VmError";
    } catch (const VmError &e) {
        EXPECT_NE(std::string(e.what()).find("specific message"),
                  std::string::npos);
    }
}

TEST(Exceptions, NestedHandlersInnermostWins)
{
    auto in = run("x = 0\n"
                  "try:\n"
                  "    try:\n"
                  "        raise 'inner'\n"
                  "    except:\n"
                  "        x = 1\n"
                  "    x = x + 10\n"
                  "except:\n"
                  "    x = 100\n");
    // Inner handler catches; outer never fires; code continues.
    EXPECT_EQ(globalInt(*in, "x"), 11);
}

TEST(Exceptions, RethrowFromHandlerHitsOuter)
{
    auto in = run("x = 0\n"
                  "try:\n"
                  "    try:\n"
                  "        raise 'first'\n"
                  "    except:\n"
                  "        raise 'second'\n"
                  "except:\n"
                  "    x = 42\n");
    EXPECT_EQ(globalInt(*in, "x"), 42);
}

TEST(Exceptions, StackRestoredAfterUnwind)
{
    // The raise happens mid-expression with operands on the stack;
    // the handler and subsequent code must see a clean stack.
    auto in = run("def boom():\n"
                  "    raise 'x'\n"
                  "total = 0\n"
                  "try:\n"
                  "    total = 1 + 2 * boom() + 4\n"
                  "except:\n"
                  "    total = 7\n"
                  "total = total + 100\n");
    EXPECT_EQ(globalInt(*in, "total"), 107);
}

TEST(Exceptions, LoopInsideTryWorks)
{
    auto in = run("hits = 0\n"
                  "try:\n"
                  "    for i in range(10):\n"
                  "        hits += 1\n"
                  "except:\n"
                  "    hits = -1\n");
    EXPECT_EQ(globalInt(*in, "hits"), 10);
}

TEST(Exceptions, TryInsideLoopEachIteration)
{
    auto in = run("caught = 0\n"
                  "for i in range(10):\n"
                  "    try:\n"
                  "        if i % 3 == 0:\n"
                  "            raise 'mod3'\n"
                  "    except:\n"
                  "        caught += 1\n");
    EXPECT_EQ(globalInt(*in, "caught"), 4);  // i = 0, 3, 6, 9
}

TEST(Exceptions, BreakOutOfTryRejected)
{
    EXPECT_THROW(run("for i in range(3):\n"
                     "    try:\n"
                     "        break\n"
                     "    except:\n"
                     "        pass\n"),
                 CompileError);
    EXPECT_THROW(run("for i in range(3):\n"
                     "    try:\n"
                     "        continue\n"
                     "    except:\n"
                     "        pass\n"),
                 CompileError);
}

TEST(Exceptions, BreakInLoopInsideTryAllowed)
{
    // The loop is entirely within the try: break stays inside it.
    auto in = run("x = 0\n"
                  "try:\n"
                  "    for i in range(10):\n"
                  "        if i == 3:\n"
                  "            break\n"
                  "        x += 1\n"
                  "except:\n"
                  "    x = -1\n");
    EXPECT_EQ(globalInt(*in, "x"), 3);
}

TEST(Exceptions, ReturnInsideTryExitsFunction)
{
    auto in = run("def f():\n"
                  "    try:\n"
                  "        return 7\n"
                  "    except:\n"
                  "        return -1\n"
                  "x = f()\n");
    EXPECT_EQ(globalInt(*in, "x"), 7);
}

TEST(Exceptions, ExceptNameFilterParsedAndIgnored)
{
    auto in = run("x = 0\n"
                  "try:\n"
                  "    raise 'oops'\n"
                  "except ValueError:\n"
                  "    x = 5\n");
    EXPECT_EQ(globalInt(*in, "x"), 5);
}

TEST(Exceptions, AssertPassesAndFails)
{
    auto in = run("assert 1 + 1 == 2\n"
                  "ok = 1\n");
    EXPECT_EQ(globalInt(*in, "ok"), 1);

    EXPECT_THROW(run("assert False\n"), VmError);
    try {
        run("assert 1 == 2, 'math is broken'\n");
        FAIL() << "expected VmError";
    } catch (const VmError &e) {
        EXPECT_NE(std::string(e.what()).find("math is broken"),
                  std::string::npos);
    }
}

TEST(Exceptions, AssertInsideTryCatchable)
{
    auto in = run("x = 0\n"
                  "try:\n"
                  "    assert False, 'nope'\n"
                  "except:\n"
                  "    x = 3\n");
    EXPECT_EQ(globalInt(*in, "x"), 3);
}

TEST(Exceptions, WorksOnAdaptiveTier)
{
    std::string src = "def run(n):\n"
                      "    caught = 0\n"
                      "    for i in range(n):\n"
                      "        try:\n"
                      "            if i % 5 == 0:\n"
                      "                raise 'ping'\n"
                      "            caught += 0\n"
                      "        except:\n"
                      "            caught += 1\n"
                      "    return caught\n";
    for (int threshold : {1, 1000000}) {
        InterpConfig cfg;
        cfg.tier = Tier::Adaptive;
        cfg.jitThreshold = threshold;
        auto in = run(src, cfg);
        Value r = in->callGlobal("run", {Value::makeInt(100)});
        EXPECT_EQ(r.asInt(), 20) << "threshold=" << threshold;
    }
}

TEST(Exceptions, HandlerStateDoesNotLeakAcrossCalls)
{
    // A function that installs and pops handlers cleanly; calling it
    // repeatedly must not accumulate state (each frame is fresh).
    auto in = run("def f(i):\n"
                  "    try:\n"
                  "        if i == 1:\n"
                  "            raise 'x'\n"
                  "        return 0\n"
                  "    except:\n"
                  "        return 1\n"
                  "a = f(0)\n"
                  "b = f(1)\n"
                  "c = f(0)\n");
    EXPECT_EQ(globalInt(*in, "a"), 0);
    EXPECT_EQ(globalInt(*in, "b"), 1);
    EXPECT_EQ(globalInt(*in, "c"), 0);
}

} // namespace
} // namespace vm
} // namespace rigor
