/**
 * @file
 * Statistics-library tests: descriptive stats against hand-computed
 * values, distribution functions against published quantiles, CI
 * coverage properties against synthetic data with known parameters,
 * and hypothesis tests on separable/inseparable samples.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "stats/ci.hh"
#include "stats/descriptive.hh"
#include "stats/distributions.hh"
#include "stats/hierarchy.hh"
#include "stats/tests.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace rigor {
namespace stats {
namespace {

TEST(Descriptive, MeanVarianceStddev)
{
    std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, MedianAndPercentiles)
{
    std::vector<double> xs = {1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(median(xs), 2.5);
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
    std::vector<double> one = {7};
    EXPECT_DOUBLE_EQ(median(one), 7.0);
}

TEST(Descriptive, GeomeanAndHarmonic)
{
    std::vector<double> xs = {1, 2, 4};
    EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
    EXPECT_NEAR(harmonicMean(xs), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
    EXPECT_THROW(geomean({1.0, -2.0}), PanicError);
}

TEST(Descriptive, SummaryFields)
{
    std::vector<double> xs = {10, 12, 14, 16, 18};
    Summary s = summarize(xs);
    EXPECT_EQ(s.n, 5u);
    EXPECT_DOUBLE_EQ(s.mean, 14.0);
    EXPECT_DOUBLE_EQ(s.min, 10.0);
    EXPECT_DOUBLE_EQ(s.max, 18.0);
    EXPECT_DOUBLE_EQ(s.median, 14.0);
    EXPECT_NEAR(s.cov, s.stddev / 14.0, 1e-12);
    EXPECT_THROW(summarize({}), PanicError);
}

TEST(Descriptive, Autocorrelation)
{
    // Alternating series: strong negative lag-1 autocorrelation.
    std::vector<double> alt;
    for (int i = 0; i < 100; ++i)
        alt.push_back(i % 2 ? 1.0 : -1.0);
    EXPECT_LT(autocorrelation(alt, 1), -0.9);
    // Constant series: defined as 0.
    std::vector<double> flat(50, 3.0);
    EXPECT_DOUBLE_EQ(autocorrelation(flat, 1), 0.0);
    // Lag 0 of any non-constant series is 1.
    std::vector<double> xs = {1, 5, 2, 8, 3};
    EXPECT_DOUBLE_EQ(autocorrelation(xs, 0), 1.0);
}

TEST(Descriptive, EffectiveSampleSizeShrinksForCorrelated)
{
    Rng rng(7);
    // AR(1) with high phi: ESS much smaller than n.
    std::vector<double> ar;
    double x = 0.0;
    for (int i = 0; i < 2000; ++i) {
        x = 0.9 * x + rng.nextGaussian();
        ar.push_back(x);
    }
    double ess = effectiveSampleSize(ar);
    EXPECT_LT(ess, 600.0);
    // White noise: ESS close to n.
    std::vector<double> wn;
    for (int i = 0; i < 2000; ++i)
        wn.push_back(rng.nextGaussian());
    EXPECT_GT(effectiveSampleSize(wn), 1200.0);
}

TEST(Descriptive, TukeyOutliers)
{
    std::vector<double> xs = {10, 11, 12, 11, 10, 12, 11, 100};
    auto out = tukeyOutliers(xs);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 7u);
    // Small samples return nothing.
    EXPECT_TRUE(tukeyOutliers({1.0, 2.0}).empty());
}

TEST(Distributions, NormalCdfKnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.959963985), 0.975, 1e-9);
    EXPECT_NEAR(normalCdf(-1.959963985), 0.025, 1e-9);
    EXPECT_NEAR(normalCdf(1.0), 0.841344746, 1e-8);
}

TEST(Distributions, NormalQuantileInvertsCdf)
{
    for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99,
                     0.999}) {
        EXPECT_NEAR(normalCdf(normalQuantile(p)), p, 1e-10)
            << "p=" << p;
    }
    EXPECT_THROW(normalQuantile(0.0), PanicError);
    EXPECT_THROW(normalQuantile(1.0), PanicError);
}

TEST(Distributions, LnGammaKnownValues)
{
    EXPECT_NEAR(lnGamma(1.0), 0.0, 1e-12);
    EXPECT_NEAR(lnGamma(2.0), 0.0, 1e-12);
    EXPECT_NEAR(lnGamma(5.0), std::log(24.0), 1e-10);
    EXPECT_NEAR(lnGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(Distributions, StudentTCdfSymmetry)
{
    for (double nu : {1.0, 3.0, 10.0, 50.0}) {
        EXPECT_NEAR(studentTCdf(0.0, nu), 0.5, 1e-12);
        for (double t : {0.5, 1.0, 2.5}) {
            EXPECT_NEAR(studentTCdf(t, nu) + studentTCdf(-t, nu), 1.0,
                        1e-10);
        }
    }
}

TEST(Distributions, StudentTCriticalValuesMatchTables)
{
    // Standard two-sided 95% critical values.
    EXPECT_NEAR(tCritical(0.95, 1), 12.706, 0.01);
    EXPECT_NEAR(tCritical(0.95, 2), 4.303, 0.005);
    EXPECT_NEAR(tCritical(0.95, 5), 2.571, 0.005);
    EXPECT_NEAR(tCritical(0.95, 10), 2.228, 0.005);
    EXPECT_NEAR(tCritical(0.95, 30), 2.042, 0.005);
    EXPECT_NEAR(tCritical(0.95, 120), 1.980, 0.005);
    // 99% values.
    EXPECT_NEAR(tCritical(0.99, 10), 3.169, 0.005);
    // Converges to the normal quantile for large nu.
    EXPECT_NEAR(tCritical(0.95, 100000), 1.95996, 0.001);
}

TEST(Distributions, StudentTQuantileInvertsCdf)
{
    for (double nu : {2.0, 7.0, 29.0}) {
        for (double p : {0.05, 0.25, 0.5, 0.8, 0.975}) {
            double q = studentTQuantile(p, nu);
            EXPECT_NEAR(studentTCdf(q, nu), p, 1e-8)
                << "nu=" << nu << " p=" << p;
        }
    }
}

TEST(Ci, TIntervalMatchesHandComputation)
{
    // n=4, mean=5, sd=2 -> half-width = t(0.95,3) * 2/2 = 3.182*1.
    std::vector<double> xs = {3, 4, 6, 7};
    ConfidenceInterval ci = tInterval(xs, 0.95);
    EXPECT_DOUBLE_EQ(ci.estimate, 5.0);
    double sd = stddev(xs);
    double expected_half = tCritical(0.95, 3) * sd / 2.0;
    EXPECT_NEAR(ci.halfWidth(), expected_half, 1e-9);
}

TEST(Ci, CoverageIsApproximatelyNominal)
{
    // Draw many samples from N(10, 2); the 95% t-interval should
    // contain 10 about 95% of the time.
    Rng rng(1234);
    int covered = 0;
    const int trials = 800;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> xs;
        for (int i = 0; i < 12; ++i)
            xs.push_back(rng.nextGaussian(10.0, 2.0));
        if (tInterval(xs, 0.95).contains(10.0))
            ++covered;
    }
    double rate = static_cast<double>(covered) / trials;
    EXPECT_GT(rate, 0.92);
    EXPECT_LT(rate, 0.98);
}

TEST(Ci, BootstrapIntervalCoversMedian)
{
    Rng rng(99);
    std::vector<double> xs;
    for (int i = 0; i < 60; ++i)
        xs.push_back(rng.nextExponential(0.5));  // skewed
    Rng boot_rng(7);
    auto ci = bootstrapInterval(
        xs, [](const std::vector<double> &v) { return median(v); },
        boot_rng, 0.95, 1000);
    EXPECT_LE(ci.lower, ci.estimate);
    EXPECT_GE(ci.upper, ci.estimate);
    // True median of Exp(0.5) is ln(2)/0.5 ~ 1.386.
    EXPECT_TRUE(ci.contains(1.386))
        << "[" << ci.lower << "," << ci.upper << "]";
}

TEST(Ci, GeomeanIntervalIsMultiplicative)
{
    std::vector<double> xs = {1.0, 2.0, 4.0, 8.0};
    auto ci = geomeanInterval(xs, 0.95);
    EXPECT_NEAR(ci.estimate, geomean(xs), 1e-9);
    EXPECT_LT(ci.lower, ci.estimate);
    EXPECT_GT(ci.upper, ci.estimate);
    EXPECT_THROW(geomeanInterval({0.0, 1.0}), PanicError);
}

TEST(Ci, RatioOfMeansKnownRatio)
{
    Rng rng(5);
    std::vector<double> numer, denom;
    for (int i = 0; i < 40; ++i) {
        numer.push_back(rng.nextLogNormal(std::log(20.0), 0.05));
        denom.push_back(rng.nextLogNormal(std::log(10.0), 0.05));
    }
    auto ci = ratioOfMeansInterval(numer, denom, 0.95);
    EXPECT_NEAR(ci.estimate, 2.0, 0.1);
    EXPECT_TRUE(ci.contains(2.0));
    EXPECT_FALSE(ci.contains(1.0));
}

TEST(Ci, RequiredSampleSizeShrinksWithTolerance)
{
    Rng rng(17);
    std::vector<double> pilot;
    for (int i = 0; i < 20; ++i)
        pilot.push_back(rng.nextGaussian(100.0, 10.0));
    size_t tight = requiredSampleSize(pilot, 0.005, 0.95);
    size_t loose = requiredSampleSize(pilot, 0.05, 0.95);
    EXPECT_GT(tight, loose);
    EXPECT_GE(loose, 2u);
}

TEST(Ci, IntervalHelpers)
{
    ConfidenceInterval a{10.0, 9.0, 11.0, 0.95};
    ConfidenceInterval b{12.5, 11.5, 13.5, 0.95};
    ConfidenceInterval c{11.2, 10.5, 12.0, 0.95};
    EXPECT_FALSE(a.overlaps(b));
    EXPECT_TRUE(a.overlaps(c));
    EXPECT_TRUE(c.overlaps(b));
    EXPECT_NEAR(a.relativeHalfWidth(), 0.1, 1e-12);
}

TEST(Tests, WelchSeparatesDifferentMeans)
{
    Rng rng(31);
    std::vector<double> a, b;
    for (int i = 0; i < 30; ++i) {
        a.push_back(rng.nextGaussian(10.0, 1.0));
        b.push_back(rng.nextGaussian(12.0, 2.0));
    }
    TestResult r = welchTTest(a, b);
    EXPECT_TRUE(r.significant(0.01));
    EXPECT_LT(r.statistic, 0.0);
}

TEST(Tests, WelchDoesNotSeparateSameMeans)
{
    Rng rng(32);
    int rejections = 0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> a, b;
        for (int i = 0; i < 15; ++i) {
            a.push_back(rng.nextGaussian(5.0, 1.0));
            b.push_back(rng.nextGaussian(5.0, 1.0));
        }
        if (welchTTest(a, b).significant(0.05))
            ++rejections;
    }
    // Type-I error rate should be near alpha.
    EXPECT_LT(rejections, trials / 8);
}

TEST(Tests, MannWhitneyDetectsShift)
{
    Rng rng(33);
    std::vector<double> a, b;
    for (int i = 0; i < 40; ++i) {
        a.push_back(rng.nextExponential(1.0));
        b.push_back(rng.nextExponential(1.0) + 1.0);
    }
    EXPECT_TRUE(mannWhitneyU(a, b).significant(0.01));
    // Identical samples: p-value 1-ish.
    std::vector<double> same = {1, 2, 3, 4, 5};
    EXPECT_FALSE(mannWhitneyU(same, same).significant(0.05));
}

TEST(Tests, EffectSizes)
{
    std::vector<double> a = {1, 2, 3, 4, 5};
    std::vector<double> b = {6, 7, 8, 9, 10};
    // Complete separation: Cliff's delta = -1.
    EXPECT_DOUBLE_EQ(cliffsDelta(a, b), -1.0);
    EXPECT_DOUBLE_EQ(cliffsDelta(b, a), 1.0);
    EXPECT_DOUBLE_EQ(cliffsDelta(a, a), 0.0);
    EXPECT_LT(cohensD(a, b), -2.0);
    EXPECT_DOUBLE_EQ(cohensD(a, a), 0.0);
}

TEST(Hierarchy, MeanOfMeansVsPooled)
{
    // Two invocations with very different levels: pooled CI ignores
    // the hierarchy and is far too narrow relative to the truth.
    std::vector<std::vector<double>> samples = {
        {10.0, 10.1, 9.9, 10.0, 10.05},
        {14.0, 14.1, 13.9, 14.0, 13.95},
    };
    auto mom = meanOfMeansInterval(samples, 0.95);
    auto pooled = naivePooledInterval(samples, 0.95);
    EXPECT_NEAR(mom.estimate, 12.0, 0.01);
    // The mean-of-means interval must be wider: only 2 replicates.
    EXPECT_GT(mom.halfWidth(), pooled.halfWidth());
}

TEST(Hierarchy, VarianceDecompositionRecoversGroundTruth)
{
    // Synthesize a two-level design with known variance components.
    Rng rng(77);
    const double between_sd = 3.0, within_sd = 1.0;
    std::vector<std::vector<double>> samples;
    for (int inv = 0; inv < 60; ++inv) {
        double level = rng.nextGaussian(100.0, between_sd);
        std::vector<double> iters;
        for (int it = 0; it < 20; ++it)
            iters.push_back(rng.nextGaussian(level, within_sd));
        samples.push_back(std::move(iters));
    }
    auto vc = decomposeVariance(samples);
    EXPECT_NEAR(vc.betweenInvocation, between_sd * between_sd, 2.5);
    EXPECT_NEAR(vc.withinInvocation, within_sd * within_sd, 0.15);
    EXPECT_GT(vc.intraclassCorrelation(), 0.75);
    EXPECT_NEAR(vc.grandMean, 100.0, 1.0);
}

TEST(Hierarchy, DegenerateInputsPanic)
{
    EXPECT_THROW(invocationMeans({}), PanicError);
    EXPECT_THROW(decomposeVariance({{1.0, 2.0}}), PanicError);
    EXPECT_THROW(decomposeVariance({{1.0}, {2.0}}), PanicError);
}


TEST(Tests, WilcoxonSignedRankDetectsPairedShift)
{
    Rng rng(41);
    std::vector<double> a, b;
    for (int i = 0; i < 25; ++i) {
        double base = rng.nextLogNormal(0.0, 0.5);
        a.push_back(base);
        b.push_back(base * 1.4);  // consistent 40% slowdown
    }
    TestResult r = wilcoxonSignedRank(a, b);
    EXPECT_TRUE(r.significant(0.01));
    EXPECT_LT(r.statistic, 0.0);
}

TEST(Tests, WilcoxonSignedRankNullIsCalibrated)
{
    Rng rng(42);
    int rejections = 0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> a, b;
        for (int i = 0; i < 20; ++i) {
            double base = rng.nextGaussian(10.0, 2.0);
            a.push_back(base + rng.nextGaussian(0.0, 0.5));
            b.push_back(base + rng.nextGaussian(0.0, 0.5));
        }
        if (wilcoxonSignedRank(a, b).significant(0.05))
            ++rejections;
    }
    EXPECT_LT(rejections, trials / 8);
}

TEST(Tests, WilcoxonSignedRankEdgeCases)
{
    std::vector<double> same = {1, 2, 3, 4, 5};
    EXPECT_FALSE(wilcoxonSignedRank(same, same).significant(0.5));
    EXPECT_THROW(wilcoxonSignedRank({1.0}, {1.0, 2.0}), PanicError);
    EXPECT_THROW(wilcoxonSignedRank({}, {}), PanicError);
    // One differing pair: too few non-zero diffs to reject.
    std::vector<double> a = {1, 2, 3};
    std::vector<double> b = {1, 2, 9};
    EXPECT_FALSE(wilcoxonSignedRank(a, b).significant(0.05));
}

/** Parameterized CI coverage across confidence levels. */
class CoverageSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(CoverageSweep, TIntervalCoverageTracksConfidence)
{
    double conf = GetParam();
    Rng rng(static_cast<uint64_t>(conf * 10000));
    int covered = 0;
    const int trials = 600;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> xs;
        for (int i = 0; i < 10; ++i)
            xs.push_back(rng.nextGaussian(0.0, 1.0));
        if (tInterval(xs, conf).contains(0.0))
            ++covered;
    }
    double rate = static_cast<double>(covered) / trials;
    EXPECT_NEAR(rate, conf, 0.05) << "confidence=" << conf;
}

INSTANTIATE_TEST_SUITE_P(Levels, CoverageSweep,
                         ::testing::Values(0.80, 0.90, 0.95, 0.99));

} // namespace
} // namespace stats
} // namespace rigor
