/**
 * @file
 * Log-sink tests: warn()/inform() must route through an installed
 * sink, honour quiet mode before the sink sees anything, and restore
 * the default stderr path when the sink is removed.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "support/logging.hh"

namespace rigor {
namespace {

/** RAII capture of warn()/inform() into a vector. */
class SinkCapture
{
  public:
    SinkCapture()
    {
        previous = setLogSink(
            [this](LogLevel level, const std::string &msg) {
                lines.emplace_back(level, msg);
            });
    }
    ~SinkCapture() { setLogSink(std::move(previous)); }

    std::vector<std::pair<LogLevel, std::string>> lines;

  private:
    LogSink previous;
};

TEST(LogSink, CapturesWarnAndInform)
{
    SinkCapture cap;
    warn("disk %d is on fire", 3);
    inform("all is well");
    ASSERT_EQ(cap.lines.size(), 2u);
    EXPECT_EQ(cap.lines[0].first, LogLevel::Warn);
    EXPECT_EQ(cap.lines[0].second, "disk 3 is on fire");
    EXPECT_EQ(cap.lines[1].first, LogLevel::Info);
    EXPECT_EQ(cap.lines[1].second, "all is well");
}

TEST(LogSink, QuietSuppressesBeforeSink)
{
    SinkCapture cap;
    setQuiet(true);
    warn("should not appear");
    inform("nor this");
    setQuiet(false);
    EXPECT_TRUE(cap.lines.empty());
    warn("visible again");
    EXPECT_EQ(cap.lines.size(), 1u);
}

TEST(LogSink, RemovingSinkRestoresDefault)
{
    {
        SinkCapture cap;
        warn("captured");
        EXPECT_EQ(cap.lines.size(), 1u);
    }
    // Sink removed; this must not crash (goes to stderr) and must not
    // touch the destroyed capture buffer.
    warn("back to stderr");
}

TEST(LogSink, LevelNames)
{
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
    EXPECT_STREQ(logLevelName(LogLevel::Info), "info");
}

} // namespace
} // namespace rigor
