/**
 * @file
 * Parser and compiler tests: AST shapes, precedence, syntax error
 * rejection, bytecode structure, constant/name pooling, scope
 * analysis, and the disassembler.
 */

#include <gtest/gtest.h>

#include "vm/compiler.hh"
#include "vm/lexer.hh"
#include "vm/parser.hh"

namespace rigor {
namespace vm {
namespace {

TEST(Parser, ExpressionPrecedence)
{
    Module m = parse("x = 1 + 2 * 3 ** 2\n");
    ASSERT_EQ(m.body.size(), 1u);
    const Stmt &s = *m.body[0];
    ASSERT_EQ(s.kind, StmtKind::Assign);
    // Top node is Add (lowest precedence).
    ASSERT_EQ(s.expr->kind, ExprKind::Binary);
    EXPECT_EQ(s.expr->binOp, BinOp::Add);
    // Right child is Mul.
    ASSERT_EQ(s.expr->rhs->kind, ExprKind::Binary);
    EXPECT_EQ(s.expr->rhs->binOp, BinOp::Mul);
    // Whose right child is Pow.
    EXPECT_EQ(s.expr->rhs->rhs->binOp, BinOp::Pow);
}

TEST(Parser, PowerIsRightAssociative)
{
    Module m = parse("x = 2 ** 3 ** 2\n");
    const Expr &e = *m.body[0]->expr;
    ASSERT_EQ(e.binOp, BinOp::Pow);
    // Right side is another Pow: 2 ** (3 ** 2).
    EXPECT_EQ(e.rhs->kind, ExprKind::Binary);
    EXPECT_EQ(e.rhs->binOp, BinOp::Pow);
    EXPECT_EQ(e.lhs->kind, ExprKind::IntLit);
}

TEST(Parser, UnaryBindsTighterThanBinary)
{
    Module m = parse("x = -a + b\n");
    const Expr &e = *m.body[0]->expr;
    EXPECT_EQ(e.kind, ExprKind::Binary);
    EXPECT_EQ(e.binOp, BinOp::Add);
    EXPECT_EQ(e.lhs->kind, ExprKind::Unary);
}

TEST(Parser, BoolChainFlattens)
{
    Module m = parse("x = a and b and c\n");
    const Expr &e = *m.body[0]->expr;
    ASSERT_EQ(e.kind, ExprKind::BoolChain);
    EXPECT_TRUE(e.isAnd);
    EXPECT_EQ(e.items.size(), 3u);
}

TEST(Parser, CallAttributeSubscriptChains)
{
    Module m = parse("x = obj.method(1, 2)[3].field\n");
    const Expr &e = *m.body[0]->expr;
    // Outermost: .field attribute.
    ASSERT_EQ(e.kind, ExprKind::Attribute);
    EXPECT_EQ(e.strValue, "field");
    // Below: subscript of a call.
    ASSERT_EQ(e.lhs->kind, ExprKind::Subscript);
    ASSERT_EQ(e.lhs->lhs->kind, ExprKind::Call);
    EXPECT_EQ(e.lhs->lhs->items.size(), 2u);
}

TEST(Parser, ForWithTupleTarget)
{
    Module m = parse("for k, v in d.items():\n    pass\n");
    const Stmt &s = *m.body[0];
    ASSERT_EQ(s.kind, StmtKind::For);
    ASSERT_EQ(s.target->kind, ExprKind::TupleLit);
    EXPECT_EQ(s.target->items.size(), 2u);
}

TEST(Parser, DefWithDefaults)
{
    Module m = parse("def f(a, b=1, c=2):\n    return a\n");
    const Stmt &s = *m.body[0];
    EXPECT_EQ(s.params.size(), 3u);
    EXPECT_EQ(s.defaults.size(), 2u);
}

TEST(Parser, ClassWithBase)
{
    Module m = parse("class B(A):\n    def m(self):\n"
                     "        return 1\n");
    const Stmt &s = *m.body[0];
    EXPECT_EQ(s.kind, StmtKind::ClassDef);
    EXPECT_EQ(s.name, "B");
    EXPECT_EQ(s.baseName, "A");
    EXPECT_EQ(s.body.size(), 1u);
}

TEST(Parser, SliceForms)
{
    Module m = parse("a = s[1:2]\nb = s[:2]\nc = s[1:]\n"
                     "d = s[:]\ne = s[::2]\n");
    for (const auto &stmt : m.body) {
        ASSERT_EQ(stmt->expr->kind, ExprKind::Subscript);
        EXPECT_EQ(stmt->expr->rhs->kind, ExprKind::SliceExpr);
        EXPECT_EQ(stmt->expr->rhs->items.size(), 3u);
    }
}

TEST(Parser, SyntaxErrorsRejected)
{
    EXPECT_THROW(parse("x = \n"), SyntaxError);
    EXPECT_THROW(parse("if x\n    y = 1\n"), SyntaxError);
    EXPECT_THROW(parse("def f(:\n    pass\n"), SyntaxError);
    EXPECT_THROW(parse("x = 1 +\n"), SyntaxError);
    EXPECT_THROW(parse("for in y:\n    pass\n"), SyntaxError);
    EXPECT_THROW(parse("a < b < c\n"), SyntaxError);   // chains
    EXPECT_THROW(parse("x = y = 1\n"), SyntaxError);   // chained =
    EXPECT_THROW(parse("if x:\npass\n"), SyntaxError); // no block
    EXPECT_THROW(parse("1 + 2 = 3\n"), SyntaxError);   // bad target
    EXPECT_THROW(parse("def f(a=1, b):\n    pass\n"),
                 SyntaxError);  // non-default after default
}

TEST(Parser, EmptyBlocksRejected)
{
    EXPECT_THROW(parse("if x:\n    \nelse:\n    y = 1\n"),
                 SyntaxError);
}

TEST(Compiler, ConstantPoolingDeduplicates)
{
    Program p = compileSource("x = 5\ny = 5\nz = 5.0\n");
    // 5 pooled once; 5.0 distinct (different tag); None for the
    // implicit return.
    int int_consts = 0, float_consts = 0;
    for (const auto &c : p.module->constants) {
        if (c.isInt())
            ++int_consts;
        if (c.isFloat())
            ++float_consts;
    }
    EXPECT_EQ(int_consts, 1);
    EXPECT_EQ(float_consts, 1);
}

TEST(Compiler, NamePooling)
{
    Program p = compileSource("foo = 1\nbar = foo + foo\n");
    int foo_count = 0;
    for (const auto &n : p.module->nameStrings)
        if (n == "foo")
            ++foo_count;
    EXPECT_EQ(foo_count, 1);
}

TEST(Compiler, LocalsVsGlobals)
{
    Program p = compileSource("g = 1\n"
                              "def f(a):\n"
                              "    b = a + g\n"
                              "    return b\n");
    const CodeObject &fn = *p.module->children[0];
    EXPECT_EQ(fn.numParams, 1);
    EXPECT_EQ(fn.numLocals, 2);  // a, b
    // g accessed via LoadGlobal inside f.
    bool has_load_global = false;
    for (const auto &ins : fn.instrs)
        if (ins.op == Op::LoadGlobal)
            has_load_global = true;
    EXPECT_TRUE(has_load_global);
}

TEST(Compiler, GlobalDeclarationForcesStoreGlobal)
{
    Program p = compileSource("c = 0\n"
                              "def bump():\n"
                              "    global c\n"
                              "    c = c + 1\n");
    const CodeObject &fn = *p.module->children[0];
    EXPECT_EQ(fn.numLocals, 0);
    bool store_global = false;
    for (const auto &ins : fn.instrs)
        if (ins.op == Op::StoreGlobal)
            store_global = true;
    EXPECT_TRUE(store_global);
}

TEST(Compiler, JumpTargetsInRange)
{
    Program p = compileSource(
        "def f(n):\n"
        "    t = 0\n"
        "    for i in range(n):\n"
        "        if i % 2 == 0:\n"
        "            continue\n"
        "        if i > 50:\n"
        "            break\n"
        "        t += i\n"
        "    while t > 0:\n"
        "        t -= 3\n"
        "    return t\n");
    const CodeObject &fn = *p.module->children[0];
    for (const auto &ins : fn.instrs) {
        if (opIsJump(ins.op)) {
            EXPECT_GE(ins.arg, 0);
            EXPECT_LE(static_cast<size_t>(ins.arg),
                      fn.instrs.size());
        }
    }
}

TEST(Compiler, EveryCodeObjectEndsWithReturn)
{
    Program p = compileSource("def f():\n"
                              "    x = 1\n"
                              "class C:\n"
                              "    def m(self):\n"
                              "        pass\n");
    std::vector<const CodeObject *> all = {p.module.get()};
    for (size_t i = 0; i < all.size(); ++i) {
        for (const auto &child : all[i]->children)
            all.push_back(child.get());
    }
    EXPECT_EQ(all.size(), 4u);  // module, f, C body, m
    for (const auto *code : all) {
        ASSERT_FALSE(code->instrs.empty());
        EXPECT_EQ(code->instrs.back().op, Op::Return)
            << code->name;
    }
}

TEST(Compiler, CodeIdsAreUnique)
{
    Program p = compileSource("def a():\n    pass\n"
                              "def b():\n    pass\n"
                              "class C:\n"
                              "    def m(self):\n        pass\n");
    std::vector<const CodeObject *> all = {p.module.get()};
    for (size_t i = 0; i < all.size(); ++i)
        for (const auto &child : all[i]->children)
            all.push_back(child.get());
    std::vector<uint32_t> ids;
    for (const auto *c : all)
        ids.push_back(c->codeId);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
    EXPECT_EQ(p.codeCount, ids.size());
}

TEST(Compiler, ErrorsRejected)
{
    EXPECT_THROW(compileSource("return 1\n"), CompileError);
    EXPECT_THROW(compileSource("break\n"), CompileError);
    EXPECT_THROW(compileSource("continue\n"), CompileError);
    EXPECT_THROW(compileSource("def f():\n    break\n"),
                 CompileError);
}

TEST(Compiler, DisassemblerShowsStructure)
{
    Program p = compileSource("def add(a, b):\n"
                              "    return a + b\n"
                              "x = add(1, 2)\n");
    std::string dis = p.module->disassemble();
    EXPECT_NE(dis.find("MAKE_FUNCTION"), std::string::npos);
    EXPECT_NE(dis.find("code add"), std::string::npos);
    EXPECT_NE(dis.find("BINARY_ADD"), std::string::npos);
    EXPECT_NE(dis.find("LOAD_FAST"), std::string::npos);
    EXPECT_NE(dis.find("(a)"), std::string::npos);
}

TEST(Compiler, TotalInstrsCountsRecursively)
{
    Program p = compileSource("def f():\n    return 1\n");
    EXPECT_EQ(p.module->totalInstrs(),
              p.module->instrs.size() +
                  p.module->children[0]->instrs.size());
}

TEST(OpNames, AllOpcodesHaveNames)
{
    for (int i = 0; i < static_cast<int>(Op::NumOpcodes); ++i) {
        std::string name = opName(static_cast<Op>(i));
        EXPECT_NE(name, "?") << "opcode " << i;
    }
}

} // namespace
} // namespace vm
} // namespace rigor
