/**
 * @file
 * Steady-state / changepoint detector tests on synthetic series with
 * known structure (flat, warmup step, slowdown, oscillation), with
 * and without noise.
 */

#include <gtest/gtest.h>

#include "stats/steady_state.hh"
#include "support/rng.hh"

namespace rigor {
namespace stats {
namespace {

std::vector<double>
noisy(std::vector<double> base, double sigma, uint64_t seed)
{
    Rng rng(seed);
    for (auto &v : base)
        v += rng.nextGaussian(0.0, sigma);
    return base;
}

std::vector<double>
step(size_t before, double hi, size_t after, double lo)
{
    std::vector<double> xs(before, hi);
    xs.insert(xs.end(), after, lo);
    return xs;
}

TEST(SteadyState, FlatSeriesIsFlat)
{
    auto xs = noisy(std::vector<double>(50, 10.0), 0.05, 1);
    auto r = detectSteadyState(xs);
    EXPECT_EQ(r.classification, SeriesClass::Flat);
    EXPECT_EQ(r.steadyStart, 0u);
    EXPECT_NEAR(r.steadyMean, 10.0, 0.1);
}

TEST(SteadyState, CleanWarmupStep)
{
    auto xs = step(10, 20.0, 40, 10.0);
    auto r = detectSteadyState(xs);
    EXPECT_EQ(r.classification, SeriesClass::Warmup);
    EXPECT_NEAR(static_cast<double>(r.steadyStart), 10.0, 2.0);
    EXPECT_NEAR(r.steadyMean, 10.0, 0.2);
}

TEST(SteadyState, NoisyWarmupStep)
{
    auto xs = noisy(step(12, 30.0, 48, 10.0), 0.4, 3);
    auto r = detectSteadyState(xs);
    EXPECT_EQ(r.classification, SeriesClass::Warmup);
    EXPECT_NEAR(static_cast<double>(r.steadyStart), 12.0, 3.0);
    EXPECT_NEAR(r.steadyMean, 10.0, 0.5);
}

TEST(SteadyState, MultiPhaseWarmup)
{
    // Three descending levels: typical staged JIT compilation.
    std::vector<double> xs(8, 30.0);
    xs.insert(xs.end(), 8, 20.0);
    xs.insert(xs.end(), 44, 10.0);
    auto r = detectSteadyState(noisy(xs, 0.2, 5));
    EXPECT_EQ(r.classification, SeriesClass::Warmup);
    EXPECT_GE(r.steadyStart, 12u);
    EXPECT_LE(r.steadyStart, 20u);
    EXPECT_NEAR(r.steadyMean, 10.0, 0.5);
}

TEST(SteadyState, SlowdownDetected)
{
    auto xs = noisy(step(30, 10.0, 30, 14.0), 0.1, 7);
    auto r = detectSteadyState(xs);
    EXPECT_EQ(r.classification, SeriesClass::Slowdown);
}

TEST(SteadyState, NoSteadyStateWhenFinalSegmentTooShort)
{
    // Level change in the last few iterations only.
    auto xs = step(56, 10.0, 4, 30.0);
    auto r = detectSteadyState(noisy(xs, 0.05, 11));
    EXPECT_EQ(r.classification, SeriesClass::NoSteadyState);
    EXPECT_FALSE(r.hasSteadyState());
    EXPECT_EQ(r.steadyStart, xs.size());
}

TEST(SteadyState, EquivalentLevelsMerge)
{
    // Two levels within tolerance merge into one flat segment.
    auto xs = step(25, 10.0, 25, 10.2);
    SteadyStateOptions opts;
    opts.equivalenceTolerance = 0.05;
    auto r = detectSteadyState(xs, opts);
    EXPECT_EQ(r.classification, SeriesClass::Flat);
}

TEST(SteadyState, SpikeDoesNotBreakDetection)
{
    auto xs = noisy(step(10, 20.0, 50, 10.0), 0.1, 13);
    xs[30] = 25.0;  // one outlier spike in steady state
    auto r = detectSteadyState(xs);
    EXPECT_TRUE(r.hasSteadyState());
    EXPECT_EQ(r.classification, SeriesClass::Warmup);
}

TEST(Segmentation, SingleSegmentForShortSeries)
{
    std::vector<double> xs = {1.0, 2.0, 1.5};
    auto segs = segmentSeries(xs);
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0].begin, 0u);
    EXPECT_EQ(segs[0].end, 3u);
}

TEST(Segmentation, SegmentsTileTheSeries)
{
    Rng rng(21);
    std::vector<double> xs;
    for (int i = 0; i < 40; ++i)
        xs.push_back(rng.nextGaussian(i < 20 ? 5.0 : 1.0, 0.1));
    auto segs = segmentSeries(xs);
    ASSERT_GE(segs.size(), 2u);
    EXPECT_EQ(segs.front().begin, 0u);
    EXPECT_EQ(segs.back().end, xs.size());
    for (size_t i = 1; i < segs.size(); ++i)
        EXPECT_EQ(segs[i].begin, segs[i - 1].end);
}

TEST(Segmentation, PenaltySuppressesSpuriousSplits)
{
    Rng rng(22);
    std::vector<double> xs;
    for (int i = 0; i < 200; ++i)
        xs.push_back(rng.nextGaussian(10.0, 1.0));
    SteadyStateOptions opts;
    opts.penaltyFactor = 6.0;
    auto segs = segmentSeries(xs, opts);
    EXPECT_LE(segs.size(), 2u);
}

TEST(SteadyState, ClassNames)
{
    EXPECT_EQ(seriesClassName(SeriesClass::Flat), "flat");
    EXPECT_EQ(seriesClassName(SeriesClass::Warmup), "warmup");
    EXPECT_EQ(seriesClassName(SeriesClass::Slowdown), "slowdown");
    EXPECT_EQ(seriesClassName(SeriesClass::NoSteadyState),
              "no-steady-state");
}

/** Property sweep: detector finds planted changepoints within +-3. */
class PlantedChangepoint
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(PlantedChangepoint, LocatesStep)
{
    auto [cut, sigma] = GetParam();
    auto xs = noisy(step(static_cast<size_t>(cut), 40.0,
                         static_cast<size_t>(80 - cut), 10.0),
                    sigma, static_cast<uint64_t>(cut * 100 + 7));
    auto r = detectSteadyState(xs);
    ASSERT_EQ(r.classification, SeriesClass::Warmup)
        << "cut=" << cut << " sigma=" << sigma;
    EXPECT_NEAR(static_cast<double>(r.steadyStart),
                static_cast<double>(cut), 3.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlantedChangepoint,
    ::testing::Combine(::testing::Values(8, 16, 24, 40),
                       ::testing::Values(0.1, 0.5, 1.5)));

} // namespace
} // namespace stats
} // namespace rigor
