/**
 * @file
 * Environment-check tests: every parser is driven with synthetic
 * file contents covering good, bad and unreadable states; the live
 * collector must degrade gracefully in containers.
 */

#include <gtest/gtest.h>

#include "harness/envcheck.hh"

namespace rigor {
namespace harness {
namespace {

TEST(EnvCheck, GovernorStates)
{
    EXPECT_EQ(checkGovernor("performance\n").severity,
              EnvSeverity::Info);
    auto bad = checkGovernor("powersave\n");
    EXPECT_EQ(bad.severity, EnvSeverity::Warning);
    EXPECT_NE(bad.detail.find("powersave"), std::string::npos);
    EXPECT_EQ(checkGovernor("").severity, EnvSeverity::Unknown);
    EXPECT_EQ(checkGovernor("ondemand").severity,
              EnvSeverity::Warning);
}

TEST(EnvCheck, LoadAverageThresholds)
{
    // 0.2 load on 8 CPUs: fine.
    EXPECT_EQ(checkLoadAverage("0.20 0.18 0.22 1/300 1234\n", 8)
                  .severity,
              EnvSeverity::Info);
    // 6.0 load on 8 CPUs: 0.75/cpu -> warning.
    EXPECT_EQ(checkLoadAverage("6.00 5.0 4.0 2/300 99\n", 8)
                  .severity,
              EnvSeverity::Warning);
    EXPECT_EQ(checkLoadAverage("", 8).severity,
              EnvSeverity::Unknown);
    EXPECT_EQ(checkLoadAverage("garbage", 8).severity,
              EnvSeverity::Unknown);
    // Zero CPU count falls back to absolute load.
    EXPECT_EQ(checkLoadAverage("0.9 0 0 1/1 1\n", 0).severity,
              EnvSeverity::Warning);
}

TEST(EnvCheck, AslrIsInformational)
{
    EXPECT_EQ(checkAslr("2\n").severity, EnvSeverity::Info);
    EXPECT_EQ(checkAslr("0\n").severity, EnvSeverity::Info);
    EXPECT_EQ(checkAslr("").severity, EnvSeverity::Unknown);
    EXPECT_NE(checkAslr("2\n").detail.find("multiple"),
              std::string::npos);
}

TEST(EnvCheck, SmtStates)
{
    EXPECT_EQ(checkSmt("off\n").severity, EnvSeverity::Info);
    EXPECT_EQ(checkSmt("notsupported\n").severity,
              EnvSeverity::Info);
    EXPECT_EQ(checkSmt("on\n").severity, EnvSeverity::Warning);
    EXPECT_EQ(checkSmt("").severity, EnvSeverity::Unknown);
}

TEST(EnvCheck, TurboStates)
{
    EXPECT_EQ(checkTurbo("1\n").severity, EnvSeverity::Info);
    EXPECT_EQ(checkTurbo("0\n").severity, EnvSeverity::Warning);
    EXPECT_EQ(checkTurbo("").severity, EnvSeverity::Unknown);
}

TEST(EnvCheck, ReportAggregation)
{
    EnvReport report;
    report.findings.push_back(checkGovernor("powersave"));
    report.findings.push_back(checkSmt("on"));
    report.findings.push_back(checkTurbo("1"));
    EXPECT_EQ(report.warningCount(), 2);
    std::string rendered = report.render();
    EXPECT_NE(rendered.find("WARN"), std::string::npos);
    EXPECT_NE(rendered.find("cpu-governor"), std::string::npos);
    EXPECT_NE(rendered.find("ok"), std::string::npos);
}

TEST(EnvCheck, LiveCollectionNeverThrows)
{
    EnvReport report = collectEnvironment();
    EXPECT_EQ(report.findings.size(), 5u);
    for (const auto &f : report.findings)
        EXPECT_FALSE(f.check.empty());
}

} // namespace
} // namespace harness
} // namespace rigor
