#!/usr/bin/env bash
# Crash-consistency torture test for the rigorbench CLI.
#
# Drives the real binary through the io:* fault family end to end:
#
#  1. crash-point sweep: `--inject io:crash-at=N` kills an archiving
#     run at FsOps call N, for every N until the run completes; after
#     every crash the archive must hold 0 or 1 entries (never a torn
#     one) and `fsck --repair` must leave it clean.
#  2. suite crash + resume: a checkpointed suite killed at sampled
#     crash points and resumed (without the fault) must reproduce the
#     uninterrupted reference artifacts byte for byte — the io:* spec
#     is excluded from the resume fingerprint by design.
#  3. disk pressure: an injected ENOSPC mid-suite is a loud runtime
#     failure (exit 2) naming the failing step, not a truncated file.
#  4. concurrent writers: two simultaneous archiving runs serialize on
#     the archive lock; both succeed, ids never collide.
#  5. fsck CLI: every corruption class is reported (exit 5), repaired
#     (exit 0), and a re-check stays clean; --json carries the stable
#     schema; usage errors keep the stable exit codes.
#
# Usage: crash_torture_test.sh /path/to/rigorbench
set -u

BIN=${1:?usage: $0 /path/to/rigorbench}
WORK=$(mktemp -d /tmp/rigor_torture_XXXXXX)
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

# Small on purpose: the sweep reruns this command dozens of times and
# sanitizer builds run an order of magnitude slower.
RUN_FLAGS=(run nbody --tier interp --invocations 1 --iterations 2
           --seed 0xfeed --quiet)

# --- 1. crash-point sweep over an archiving run ----------------------
# The write path makes a small, bounded number of FsOps calls; the cap
# only turns an unexpected livelock into a failure instead of a hang.
SWEEP_CAP=60
completed=0
for n in $(seq 1 $SWEEP_CAP); do
    dir="$WORK/sweep-$n"
    "$BIN" "${RUN_FLAGS[@]}" --archive "$dir" \
        --inject "io:crash-at=$n" >/dev/null 2>&1
    rc=$?
    if [ "$rc" -eq 0 ]; then
        completed=1
    elif [ "$rc" -ne 6 ]; then
        fail "crash point $n exited $rc (want 6, or 0 when done)"
    fi
    "$BIN" fsck --archive "$dir" --repair >"$WORK/sweep-fsck.txt" \
        2>&1 || fail "fsck --repair after crash point $n exited $?"
    entries=$(ls "$dir"/entry-*.json 2>/dev/null | wc -l)
    case "$entries" in
        0|1) ;;
        *) fail "crash point $n left $entries entries (want 0 or 1)" ;;
    esac
    if [ "$rc" -eq 0 ]; then
        [ "$entries" -eq 1 ] ||
            fail "completed run (crash point $n) lost its entry"
        break
    fi
done
[ "$completed" -eq 1 ] ||
    fail "archiving run made more than $SWEEP_CAP FsOps calls"
echo "ok: crash sweep completed at call $n, every point recovered"

# --- 2. suite crash at sampled points, resume must be byte-identical -
SUITE_FLAGS=(suite --invocations 2 --iterations 2 --seed 0xfeed
             --checkpoint-every 2 --quiet)

run_suite() { # run_suite <dir> [extra flags...]
    local dir=$1
    shift
    mkdir -p "$dir"
    "$BIN" "${SUITE_FLAGS[@]}" --jobs 1 \
        --resume "$dir/state.json" --metrics "$dir/metrics.json" \
        --trace "$dir/trace.json" "$@" \
        >"$dir/stdout.txt" 2>"$dir/stderr.txt"
}

run_suite "$WORK/ref" || fail "reference suite run failed (rc=$?)"
[ -s "$WORK/ref/state.json" ] || fail "reference wrote no state file"

for n in 3 12 25; do
    dir="$WORK/crash-$n"
    run_suite "$dir" --inject "io:crash-at=$n"
    rc=$?
    [ "$rc" -eq 6 ] ||
        fail "suite with io:crash-at=$n exited $rc (want 6)"
    # Resume without the fault: the io:* spec must not change the
    # resume fingerprint, and the artifacts must match the reference.
    run_suite "$dir" || fail "resume after crash-at=$n exited $?"
    for f in state.json metrics.json trace.json; do
        cmp -s "$WORK/ref/$f" "$dir/$f" ||
            fail "crash-at=$n: $f differs from the reference"
    done
done
echo "ok: suite crash/resume byte-identical at every sampled point"

# --- 3. injected ENOSPC is a loud runtime failure --------------------
mkdir -p "$WORK/enospc"
run_suite "$WORK/enospc" --inject io:enospc:at=1
rc=$?
[ "$rc" -eq 2 ] || fail "suite under ENOSPC exited $rc (want 2)"
grep -q "atomic write failed" "$WORK/enospc/stderr.txt" ||
    fail "ENOSPC failure did not name the failing write"

# --- 4. two concurrent archiving runs serialize on the lock ----------
ARCH="$WORK/shared"
"$BIN" "${RUN_FLAGS[@]}" --archive "$ARCH" --label left \
    >/dev/null 2>&1 &
left=$!
"$BIN" "${RUN_FLAGS[@]}" --archive "$ARCH" --label right \
    >/dev/null 2>&1 &
right=$!
wait "$left" || fail "concurrent appender 'left' failed"
wait "$right" || fail "concurrent appender 'right' failed"
"$BIN" archive list --archive "$ARCH" >"$WORK/shared-list.txt" 2>&1 ||
    fail "archive list after concurrent appends exited $?"
grep -q "left" "$WORK/shared-list.txt" &&
    grep -q "right" "$WORK/shared-list.txt" ||
    fail "a concurrent append vanished from the listing"
[ -e "$ARCH/entry-000001.json" ] && [ -e "$ARCH/entry-000002.json" ] ||
    fail "concurrent appends did not produce ids 1 and 2"
"$BIN" fsck --archive "$ARCH" >/dev/null 2>&1 ||
    fail "fsck after concurrent appends exited $?"
echo "ok: concurrent appenders serialized cleanly"

# --- 5. fsck CLI: report (5), repair (0), stay clean (0) -------------
FARCH="$WORK/fsckarch"
"$BIN" "${RUN_FLAGS[@]}" --archive "$FARCH" >/dev/null 2>&1 ||
    fail "seeding the fsck archive failed"
"$BIN" "${RUN_FLAGS[@]}" --archive "$FARCH" >/dev/null 2>&1 ||
    fail "seeding the fsck archive failed"
# One of every repairable corruption class:
cp "$FARCH/entry-000001.json" "$FARCH/entry-000001.json.bak"
head -c 40 "$FARCH/entry-000001.json.bak" \
    >"$FARCH/entry-000001.json"                  # corrupt-main
echo "garbage" >"$FARCH/entry-000002.json"       # corrupt-entry
echo "torn" >"$FARCH/entry-000003.json.tmp"      # orphan-tmp
echo "stale" >"$FARCH/entry-000007.json.bak"     # orphan-bak

"$BIN" fsck --archive "$FARCH" --json "$WORK/fsck.json" \
    >"$WORK/fsck-verify.txt" 2>&1
rc=$?
[ "$rc" -eq 5 ] || fail "fsck on a damaged archive exited $rc (want 5)"
for kind in corrupt-main corrupt-entry orphan-tmp orphan-bak; do
    grep -q "$kind" "$WORK/fsck-verify.txt" ||
        fail "fsck did not report $kind"
done
grep -q "re-run with --repair" "$WORK/fsck-verify.txt" ||
    fail "fsck did not point at --repair"
grep -q '"schema": "rigorbench-fsck"' "$WORK/fsck.json" ||
    fail "fsck --json carries no schema field"
# Verify-only must not have touched anything.
[ -e "$FARCH/entry-000003.json.tmp" ] ||
    fail "verify-only fsck removed a file"

"$BIN" fsck --archive "$FARCH" --repair >"$WORK/fsck-repair.txt" 2>&1
rc=$?
[ "$rc" -eq 0 ] || fail "fsck --repair exited $rc (want 0)"
grep -q "restored from backup" "$WORK/fsck-repair.txt" ||
    fail "repair did not restore from the backup"
[ ! -e "$FARCH/entry-000003.json.tmp" ] ||
    fail "repair did not sweep the orphaned .tmp"
[ -e "$FARCH/entry-000002.json.quarantine" ] ||
    fail "repair did not quarantine the damaged entry"
"$BIN" fsck --archive "$FARCH" >"$WORK/fsck-clean.txt" 2>&1 ||
    fail "re-check after repair exited $? (want 0)"
grep -q "archive is clean" "$WORK/fsck-clean.txt" ||
    fail "repaired archive not reported clean"
# The restored entry is loadable and the listing flags the quarantine.
"$BIN" archive list --archive "$FARCH" >"$WORK/fsck-list.txt" 2>&1 ||
    fail "archive list after repair exited $?"
grep -q "quarantined file(s) present" "$WORK/fsck-list.txt" ||
    fail "archive list does not point at the quarantine"

# --- stable exit codes for fsck usage errors -------------------------
"$BIN" fsck >/dev/null 2>&1
rc=$?
[ "$rc" -eq 1 ] || fail "fsck without --archive exited $rc (want 1)"
"$BIN" fsck --archive "$WORK/no-such-dir" >/dev/null 2>&1
rc=$?
[ "$rc" -eq 2 ] || fail "fsck on a missing dir exited $rc (want 2)"
"$BIN" run nbody --repair >/dev/null 2>&1
rc=$?
[ "$rc" -eq 1 ] || fail "--repair outside fsck exited $rc (want 1)"

echo "PASS: crash-consistency torture"
