/**
 * @file
 * Microarchitecture-model tests: cache geometry/LRU behaviour, branch
 * predictor learning, dispatch predictor, counter arithmetic, and the
 * perf model's end-to-end event accounting.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "uarch/branch.hh"
#include "uarch/cache.hh"
#include "uarch/counters.hh"
#include "uarch/perf_model.hh"
#include "support/rng.hh"

namespace rigor {
namespace uarch {
namespace {

TEST(Cache, HitsAfterFill)
{
    Cache c({1024, 64, 2});
    EXPECT_FALSE(c.access(0));       // cold miss
    EXPECT_TRUE(c.access(0));        // hit
    EXPECT_TRUE(c.access(63));       // same line
    EXPECT_FALSE(c.access(64));      // next line: miss
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictionWithinSet)
{
    // 2-way, 8 sets of 64B lines: addresses 0, 512, 1024 map to set 0.
    Cache c({1024, 64, 2});
    EXPECT_FALSE(c.access(0));
    EXPECT_FALSE(c.access(512));
    EXPECT_TRUE(c.access(0));       // refreshes 0's LRU
    EXPECT_FALSE(c.access(1024));   // evicts 512 (LRU)
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(512));    // was evicted
}

TEST(Cache, WorkingSetLargerThanCacheThrashes)
{
    Cache c({4096, 64, 4});
    // Working set of 4 KiB fits: second pass all hits.
    for (uint64_t a = 0; a < 4096; a += 64)
        c.access(a);
    uint64_t misses_before = c.misses();
    for (uint64_t a = 0; a < 4096; a += 64)
        EXPECT_TRUE(c.access(a));
    EXPECT_EQ(c.misses(), misses_before);
    // 64 KiB working set cannot fit: mostly misses.
    c.reset();
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t a = 0; a < 65536; a += 64)
            c.access(a);
    EXPECT_GT(c.misses(), c.accesses() / 2);
}

TEST(Cache, BadGeometryPanics)
{
    EXPECT_THROW(Cache({1000, 60, 2}), PanicError);
    EXPECT_THROW(Cache({1024, 64, 0}), PanicError);
}

TEST(CacheHierarchyTest, LatencyIncreasesDownTheHierarchy)
{
    auto h = CacheHierarchy::makeDefault();
    uint32_t first = h.access(0x1000);     // cold: DRAM
    uint32_t second = h.access(0x1000);    // L1 hit
    EXPECT_GT(first, 100u);
    EXPECT_EQ(second, 0u);
}

TEST(CacheHierarchyTest, L2CatchesL1Evictions)
{
    auto h = CacheHierarchy::makeDefault();
    // Fill 64 KiB (2x L1 size): L1 thrashes, L2 holds everything.
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t a = 0; a < 65536; a += 64)
            h.access(a);
    EXPECT_GT(h.l1().misses(), 1000u);
    // Second pass L2 misses are near zero (all lines resident).
    uint64_t l2_before = h.l2().misses();
    for (uint64_t a = 0; a < 65536; a += 64)
        h.access(a);
    EXPECT_LE(h.l2().misses() - l2_before, 16u);
}

TEST(Branch, BimodalLearnsBiasedBranch)
{
    BimodalPredictor p;
    int correct = 0;
    for (int i = 0; i < 1000; ++i)
        if (p.predictAndUpdate(0x42, true))
            ++correct;
    EXPECT_GT(correct, 990);
}

TEST(Branch, BimodalToleratesOccasionalFlip)
{
    BimodalPredictor p;
    // Loop-branch pattern: 9 taken, 1 not-taken.
    int correct = 0;
    for (int i = 0; i < 1000; ++i)
        if (p.predictAndUpdate(0x7, i % 10 != 9))
            ++correct;
    EXPECT_GT(correct, 850);
}

TEST(Branch, GshareLearnsAlternatingPattern)
{
    GsharePredictor g;
    BimodalPredictor b;
    int g_correct = 0, b_correct = 0;
    for (int i = 0; i < 4000; ++i) {
        bool taken = i % 2 == 0;
        if (g.predictAndUpdate(0x9, taken))
            ++g_correct;
        if (b.predictAndUpdate(0x9, taken))
            ++b_correct;
    }
    // History-based gshare nails it; bimodal is ~50/50.
    EXPECT_GT(g_correct, 3800);
    EXPECT_LT(b_correct, 2600);
}

TEST(Branch, ResetClearsLearning)
{
    BimodalPredictor p;
    for (int i = 0; i < 100; ++i)
        p.predictAndUpdate(1, true);
    p.reset();
    // Initial counter state predicts not-taken.
    EXPECT_FALSE(p.predictAndUpdate(1, true));
}

TEST(Branch, DispatchPredictorLearnsRepeatingSequence)
{
    DispatchPredictor d;
    // A repeating 4-opcode loop body becomes predictable.
    const uint16_t seq[] = {3, 7, 11, 19};
    int correct = 0;
    for (int i = 0; i < 4000; ++i)
        if (d.predictAndUpdate(seq[i % 4]))
            ++correct;
    EXPECT_GT(correct, 3800);
    // Random opcodes are unpredictable.
    d.reset();
    correct = 0;
    uint64_t x = 12345;
    for (int i = 0; i < 4000; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        if (d.predictAndUpdate(static_cast<uint16_t>(x >> 33 & 31)))
            ++correct;
    }
    EXPECT_LT(correct, 1200);
}

TEST(Counters, DiffAndAdd)
{
    CounterSet a;
    a.instructions = 1000;
    a.cycles = 500;
    a.branchMisses = 10;
    CounterSet b = a;
    b.instructions = 3000;
    b.cycles = 1500;
    b.branchMisses = 25;
    CounterSet d = b.diff(a);
    EXPECT_EQ(d.instructions, 2000u);
    EXPECT_EQ(d.cycles, 1000u);
    EXPECT_EQ(d.branchMisses, 15u);
    d.add(a);
    EXPECT_EQ(d.instructions, 3000u);
    // diff clamps at zero instead of underflowing.
    CounterSet neg = a.diff(b);
    EXPECT_EQ(neg.instructions, 0u);
}

TEST(Counters, DerivedMetrics)
{
    CounterSet c;
    c.instructions = 10000;
    c.cycles = 5000;
    c.branches = 1000;
    c.branchMisses = 50;
    c.l1dMisses = 20;
    c.llcMisses = 5;
    EXPECT_DOUBLE_EQ(c.ipc(), 2.0);
    EXPECT_DOUBLE_EQ(c.branchMpki(), 5.0);
    EXPECT_DOUBLE_EQ(c.l1dMpki(), 2.0);
    EXPECT_DOUBLE_EQ(c.llcMpki(), 0.5);
    EXPECT_DOUBLE_EQ(c.branchMissRate(), 0.05);
    CounterSet zero;
    EXPECT_DOUBLE_EQ(zero.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(zero.branchMpki(), 0.0);
}

TEST(PerfModelTest, AccountsBytecodesAndUops)
{
    PerfModel m;
    m.onBytecode(vm::Op::BinaryAdd, 8);
    m.onBytecode(vm::Op::LoadFast, 2);
    CounterSet c = m.snapshot();
    EXPECT_EQ(c.bytecodes, 2u);
    EXPECT_EQ(c.instructions, 10u);
    EXPECT_GT(c.cycles, 0u);
}

TEST(PerfModelTest, MispredictsAddCycles)
{
    PerfModelConfig cfg;
    PerfModel m(cfg);
    for (int i = 0; i < 100; ++i)
        m.onBytecode(vm::Op::Nop, 4);
    uint64_t base = m.snapshot().cycles;
    // Random branches: roughly half mispredict, adding penalties.
    Rng rng(3);
    for (int i = 0; i < 200; ++i)
        m.onBranch(i, rng.nextBernoulli(0.5));
    EXPECT_GT(m.snapshot().cycles, base);
    EXPECT_GT(m.snapshot().branchMisses, 20u);
}

TEST(PerfModelTest, CacheMissesRaiseCycles)
{
    PerfModel warm;
    PerfModel cold;
    for (int i = 0; i < 1000; ++i) {
        warm.onBytecode(vm::Op::Nop, 4);
        cold.onBytecode(vm::Op::Nop, 4);
        warm.onMemAccess(0x100, 8, false);          // same line
        cold.onMemAccess(0x100 + i * 4096, 8, false);  // streaming
    }
    EXPECT_LT(warm.snapshot().cycles, cold.snapshot().cycles);
    EXPECT_LT(warm.snapshot().l1dMisses, 5u);
    EXPECT_GT(cold.snapshot().l1dMisses, 900u);
}

TEST(PerfModelTest, AblationDisablesModels)
{
    PerfModelConfig cfg;
    cfg.modelCaches = false;
    cfg.modelBranches = false;
    PerfModel m(cfg);
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        m.onMemAccess(static_cast<uint64_t>(i) * 4096, 8, false);
        m.onBranch(i, rng.nextBernoulli(0.5));
    }
    CounterSet c = m.snapshot();
    EXPECT_EQ(c.l1dMisses, 0u);
    EXPECT_EQ(c.branchMisses, 0u);
    EXPECT_EQ(c.cycles, 0u);
    EXPECT_EQ(c.loads, 500u);
    EXPECT_EQ(c.branches, 500u);
}

TEST(PerfModelTest, ResetAndResetCounters)
{
    PerfModel m;
    m.onMemAccess(0x40, 8, false);
    m.onBytecode(vm::Op::Nop, 4);
    m.resetCounters();
    EXPECT_EQ(m.snapshot().instructions, 0u);
    // Counters cleared but cache still warm: the same line hits.
    m.onMemAccess(0x40, 8, false);
    EXPECT_EQ(m.snapshot().l1dMisses, 0u);
    m.reset();
    m.onMemAccess(0x40, 8, false);
    EXPECT_EQ(m.snapshot().l1dMisses, 1u);
}

TEST(PerfModelTest, SpanningAccessTouchesTwoLines)
{
    PerfModel m;
    m.onMemAccess(60, 8, false);  // crosses the 64B boundary
    EXPECT_EQ(m.snapshot().l1dAccesses, 2u);
}


TEST(PerfModelTest, ICacheModelsCodeFootprint)
{
    PerfModel m;
    // Interpreter-like: 40 handlers touched round-robin fits L1I.
    for (int i = 0; i < 20000; ++i)
        m.onCodeFetch(0x400000ULL +
                      static_cast<uint64_t>(i % 40) * 192);
    CounterSet interp_like = m.snapshot();
    EXPECT_LT(interp_like.l1iMisses, 200u);

    // JIT-like: a 512 KiB code region streamed repeatedly thrashes.
    m.reset();
    for (int i = 0; i < 20000; ++i)
        m.onCodeFetch(0x100000000ULL +
                      static_cast<uint64_t>(i % 8192) * 64);
    CounterSet jit_like = m.snapshot();
    EXPECT_GT(jit_like.l1iMisses, 15000u);
    EXPECT_GT(jit_like.l1iAccesses, 0u);
}

TEST(PerfModelTest, ICacheDisabledWithCacheAblation)
{
    PerfModelConfig cfg;
    cfg.modelCaches = false;
    PerfModel m(cfg);
    for (int i = 0; i < 100; ++i)
        m.onCodeFetch(static_cast<uint64_t>(i) * 4096);
    EXPECT_EQ(m.snapshot().l1iMisses, 0u);
    EXPECT_EQ(m.snapshot().l1iAccesses, 0u);
}

} // namespace
} // namespace uarch
} // namespace rigor
