/**
 * @file
 * Comparison-engine tests: golden values for the hierarchical ratio
 * bootstrap, seed-determinism of reports, honest inconclusive
 * verdicts, and the regression gate's decision rule.
 */

#include <gtest/gtest.h>

#include "compare/compare.hh"
#include "stats/ci.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace rigor {
namespace compare {
namespace {

using TwoLevel = std::vector<std::vector<double>>;

/** Fabricated run: deterministic times, no VM involved. */
harness::RunResult
makeRun(const std::string &workload, vm::Tier tier, double baseMs,
        double scale = 1.0)
{
    harness::RunResult run;
    run.workload = workload;
    run.tier = tier;
    run.size = 10;
    for (int inv = 0; inv < 4; ++inv) {
        harness::InvocationResult ir;
        ir.invocationSeed = 100 + inv;
        for (int it = 0; it < 6; ++it) {
            harness::IterationSample s;
            // Flat series with mild between/within variation so
            // intervals are non-degenerate but steady from iter 0.
            s.timeMs =
                scale * (baseMs + 0.002 * inv + 0.001 * (it % 3));
            ir.samples.push_back(s);
        }
        run.invocations.push_back(ir);
    }
    run.invocationsAttempted = 4;
    return run;
}

archive::Entry
makeEntry(int id, const std::string &fingerprint,
          std::vector<harness::RunResult> runs)
{
    archive::Entry e;
    e.summary.id = id;
    e.summary.fingerprint = fingerprint;
    e.summary.command = "run";
    e.summary.runCount = static_cast<int>(runs.size());
    e.config = Json::object();
    e.runs = std::move(runs);
    return e;
}

TEST(HierarchicalRatio, ConstantSamplesGiveExactDegenerateInterval)
{
    TwoLevel numer = {{4.0, 4.0}, {4.0, 4.0}};
    TwoLevel denom = {{2.0, 2.0}, {2.0, 2.0}};
    Rng rng(42);
    auto ci = stats::hierarchicalRatioInterval(numer, denom, rng,
                                               0.95, 200);
    // Every replicate resamples constants, so the whole distribution
    // collapses onto the true ratio.
    EXPECT_DOUBLE_EQ(ci.estimate, 2.0);
    EXPECT_DOUBLE_EQ(ci.lower, 2.0);
    EXPECT_DOUBLE_EQ(ci.upper, 2.0);
}

TEST(HierarchicalRatio, EstimateIsRatioOfMeanOfMeans)
{
    // Hand-computed: mean-of-means(numer) = ((1+3)/2 + (5+7)/2)/2
    // = (2 + 6)/2 = 4; mean-of-means(denom) = (1 + 3)/2 = 2.
    TwoLevel numer = {{1.0, 3.0}, {5.0, 7.0}};
    TwoLevel denom = {{1.0, 1.0}, {3.0, 3.0}};
    Rng rng(7);
    auto ci = stats::hierarchicalRatioInterval(numer, denom, rng,
                                               0.95, 2000);
    EXPECT_DOUBLE_EQ(ci.estimate, 4.0 / 2.0);
    EXPECT_LE(ci.lower, ci.estimate);
    EXPECT_GE(ci.upper, ci.estimate);
    // Denominator invocation means are 1 or 3, numerator replicates
    // lie in [1, 7]: the ratio can never leave [1/3, 7].
    EXPECT_GE(ci.lower, 1.0 / 3.0);
    EXPECT_LE(ci.upper, 7.0);
    // With both invocations distinguishable the interval has width.
    EXPECT_LT(ci.lower, ci.upper);
}

TEST(HierarchicalRatio, SameSeedSameInterval)
{
    TwoLevel numer = {{1.0, 1.2, 0.9}, {1.4, 1.3, 1.5}};
    TwoLevel denom = {{0.8, 0.7, 0.9}, {1.0, 1.1, 0.9}};
    Rng a(123), b(123), c(999);
    auto ci1 = stats::hierarchicalRatioInterval(numer, denom, a);
    auto ci2 = stats::hierarchicalRatioInterval(numer, denom, b);
    EXPECT_DOUBLE_EQ(ci1.lower, ci2.lower);
    EXPECT_DOUBLE_EQ(ci1.upper, ci2.upper);
    auto ci3 = stats::hierarchicalRatioInterval(numer, denom, c);
    // A different stream draws different replicates; the estimate is
    // seed-independent even then.
    EXPECT_DOUBLE_EQ(ci1.estimate, ci3.estimate);
    EXPECT_TRUE(ci1.lower != ci3.lower || ci1.upper != ci3.upper);
}

TEST(HierarchicalRatio, RejectsDegenerateInputs)
{
    TwoLevel ok = {{1.0}};
    EXPECT_THROW(
        {
            Rng r(1);
            stats::hierarchicalRatioInterval({}, ok, r);
        },
        PanicError);
    EXPECT_THROW(
        {
            Rng r(1);
            stats::hierarchicalRatioInterval(ok, {{}}, r);
        },
        PanicError);
    EXPECT_THROW(
        {
            Rng r(1);
            stats::hierarchicalRatioInterval(ok, ok, r, 0.95, 5);
        },
        PanicError);
}

TEST(Compare, EffectSizeBands)
{
    EXPECT_EQ(classifyEffect(1.0), EffectSize::Negligible);
    EXPECT_EQ(classifyEffect(1.005), EffectSize::Negligible);
    EXPECT_EQ(classifyEffect(1.02), EffectSize::Small);
    EXPECT_EQ(classifyEffect(1.0 / 1.02), EffectSize::Small);
    EXPECT_EQ(classifyEffect(1.10), EffectSize::Medium);
    EXPECT_EQ(classifyEffect(1.5), EffectSize::Large);
    EXPECT_EQ(classifyEffect(0.5), EffectSize::Large);
    EXPECT_THROW(classifyEffect(0.0), PanicError);
}

TEST(Compare, IdenticalEntriesAreInconclusiveAndDeterministic)
{
    auto base = makeEntry(1, "cafe", {makeRun("w", vm::Tier::Interp,
                                              1.0)});
    auto cand = makeEntry(2, "cafe", {makeRun("w", vm::Tier::Interp,
                                              1.0)});
    CompareConfig cfg;
    auto r1 = compareEntries(base, cand, cfg);
    ASSERT_EQ(r1.workloads.size(), 1u);
    const auto &wc = r1.workloads[0];
    // Identical samples: the point speedup is exactly 1.0 and no
    // direction can honestly be claimed.
    EXPECT_DOUBLE_EQ(wc.speedup.estimate, 1.0);
    EXPECT_EQ(wc.verdict, Verdict::Inconclusive);
    EXPECT_EQ(wc.effect, EffectSize::Negligible);
    EXPECT_TRUE(r1.sameConfig);

    // Byte-identical rendering across repeated comparisons.
    auto r2 = compareEntries(base, cand, cfg);
    r1.baselineRef = r2.baselineRef = "HEAD~1";
    r1.candidateRef = r2.candidateRef = "HEAD";
    EXPECT_EQ(renderMarkdown(r1), renderMarkdown(r2));
    EXPECT_EQ(reportToJson(r1).dump(2), reportToJson(r2).dump(2));
    // The gate never fails on an inconclusive comparison.
    EXPECT_TRUE(evaluateGate(r1, 5.0).pass);
    EXPECT_TRUE(evaluateGate(r1, 0.0).pass);
}

TEST(Compare, DetectsInjectedSlowdown)
{
    auto base = makeEntry(1, "aaaa", {makeRun("w", vm::Tier::Interp,
                                              1.0)});
    auto cand = makeEntry(2, "bbbb", {makeRun("w", vm::Tier::Interp,
                                              1.0, 1.5)});
    CompareConfig cfg;
    auto report = compareEntries(base, cand, cfg);
    ASSERT_EQ(report.workloads.size(), 1u);
    const auto &wc = report.workloads[0];
    EXPECT_FALSE(report.sameConfig);
    EXPECT_NEAR(wc.speedup.estimate, 1.0 / 1.5, 1e-9);
    EXPECT_EQ(wc.verdict, Verdict::Slower);
    EXPECT_EQ(wc.effect, EffectSize::Large);

    auto gate = evaluateGate(report, 5.0);
    EXPECT_FALSE(gate.pass);
    ASSERT_EQ(gate.regressions.size(), 1u);
    EXPECT_EQ(gate.regressions[0].workload, "w");
    EXPECT_NEAR(gate.regressions[0].slowdownPct, 50.0, 1e-6);
    // A threshold looser than the regression passes it.
    EXPECT_TRUE(evaluateGate(report, 60.0).pass);
}

TEST(Compare, GateRequiresWholeIntervalPastThreshold)
{
    CompareReport report;
    report.confidence = 0.95;
    WorkloadComparison wc;
    wc.workload = "w";
    wc.tier = "interp";
    // Point estimate past a 5% threshold, but the interval reaches
    // back inside it: possibly-noise, so the gate must pass.
    wc.speedup.estimate = 0.93;
    wc.speedup.lower = 0.90;
    wc.speedup.upper = 0.97;
    report.workloads.push_back(wc);
    EXPECT_TRUE(evaluateGate(report, 5.0).pass);
    // Tighten the interval below 1/1.05 and the gate fails.
    report.workloads[0].speedup.upper = 0.94;
    EXPECT_FALSE(evaluateGate(report, 5.0).pass);
    // ... but a 10% threshold tolerates it again.
    EXPECT_TRUE(evaluateGate(report, 10.0).pass);
    EXPECT_THROW(evaluateGate(report, -1.0), FatalError);
}

TEST(Compare, UnpairedRunsAreReportedNotCompared)
{
    auto base = makeEntry(
        1, "cafe",
        {makeRun("shared", vm::Tier::Interp, 1.0),
         makeRun("only_a", vm::Tier::Interp, 1.0)});
    auto cand = makeEntry(
        2, "cafe",
        {makeRun("shared", vm::Tier::Interp, 1.0),
         makeRun("only_b", vm::Tier::Adaptive, 1.0)});
    CompareConfig cfg;
    auto report = compareEntries(base, cand, cfg);
    ASSERT_EQ(report.workloads.size(), 1u);
    EXPECT_EQ(report.workloads[0].workload, "shared");
    ASSERT_EQ(report.baselineOnly.size(), 1u);
    EXPECT_EQ(report.baselineOnly[0], "only_a/interp");
    ASSERT_EQ(report.candidateOnly.size(), 1u);
    EXPECT_EQ(report.candidateOnly[0], "only_b/adaptive");

    // Entries with no overlap at all cannot be compared.
    auto lonely = makeEntry(3, "dddd",
                            {makeRun("other", vm::Tier::Interp,
                                     1.0)});
    EXPECT_THROW(compareEntries(base, lonely, cfg), FatalError);
}

} // namespace
} // namespace compare
} // namespace rigor
