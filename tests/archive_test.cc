/**
 * @file
 * Run-archive tests: append/scan/load round-trips, ref resolution,
 * fingerprint sensitivity, quarantine of corrupted entries, and prune
 * semantics (ids are never reused).
 */

#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "archive/archive.hh"
#include "support/durable_io.hh"
#include "support/filelock.hh"
#include "support/fingerprint.hh"
#include "support/logging.hh"

namespace rigor {
namespace archive {
namespace {

/** Fresh scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    ScratchDir()
    {
        char tmpl[] = "/tmp/rigor_archive_XXXXXX";
        const char *d = ::mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        dir_ = d ? d : ".";
    }

    ~ScratchDir()
    {
        std::string cmd = "rm -rf '" + dir_ + "'";
        int rc = std::system(cmd.c_str());
        (void)rc;
    }

    const std::string &dir() const { return dir_; }

    std::string path(const std::string &name) const
    {
        return dir_ + "/" + name;
    }

  private:
    std::string dir_;
};

harness::RunResult
makeRun(const std::string &workload, double baseMs)
{
    harness::RunResult run;
    run.workload = workload;
    run.tier = vm::Tier::Interp;
    run.size = 10;
    for (int inv = 0; inv < 2; ++inv) {
        harness::InvocationResult ir;
        ir.invocationSeed = 10 + inv;
        for (int it = 0; it < 3; ++it) {
            harness::IterationSample s;
            s.timeMs = baseMs + 0.01 * it;
            ir.samples.push_back(s);
        }
        run.invocations.push_back(ir);
    }
    run.invocationsAttempted = 2;
    return run;
}

Json
makeConfig(int jitThreshold)
{
    Json c = Json::object();
    c.set("jit_threshold", jitThreshold);
    c.set("seed", "0xc0ffee");
    return c;
}

TEST(Archive, AppendScanLoadRoundTrip)
{
    ScratchDir scratch;
    RunArchive ar(scratch.dir());
    int id1 = ar.append(makeConfig(100), "base", "run",
                        {makeRun("sieve", 1.0)});
    int id2 = ar.append(makeConfig(100), "", "suite",
                        {makeRun("sieve", 1.1),
                         makeRun("queens", 2.0)});
    EXPECT_EQ(id1, 1);
    EXPECT_EQ(id2, 2);

    ScanResult scan = ar.scan();
    ASSERT_EQ(scan.entries.size(), 2u);
    EXPECT_TRUE(scan.quarantined.empty());
    EXPECT_EQ(scan.entries[0].id, 1);
    EXPECT_EQ(scan.entries[0].label, "base");
    EXPECT_EQ(scan.entries[0].command, "run");
    EXPECT_EQ(scan.entries[0].runCount, 1);
    EXPECT_EQ(scan.entries[1].label, "");
    EXPECT_EQ(scan.entries[1].runCount, 2);
    // Same config, same fingerprint: compare can promise identity.
    EXPECT_EQ(scan.entries[0].fingerprint,
              scan.entries[1].fingerprint);

    Entry e = ar.load(scan.entries[1]);
    ASSERT_EQ(e.runs.size(), 2u);
    EXPECT_EQ(e.runs[0].workload, "sieve");
    EXPECT_EQ(e.runs[1].workload, "queens");
    ASSERT_EQ(e.runs[0].invocations.size(), 2u);
    EXPECT_DOUBLE_EQ(e.runs[0].invocations[0].samples[1].timeMs,
                     1.11);
    EXPECT_EQ(e.config.at("jit_threshold").asInt(), 100);
}

TEST(Archive, FingerprintTracksConfig)
{
    ScratchDir scratch;
    RunArchive ar(scratch.dir());
    ar.append(makeConfig(100), "", "run", {makeRun("sieve", 1.0)});
    ar.append(makeConfig(999), "", "run", {makeRun("sieve", 1.0)});
    ScanResult scan = ar.scan();
    ASSERT_EQ(scan.entries.size(), 2u);
    EXPECT_NE(scan.entries[0].fingerprint,
              scan.entries[1].fingerprint);
    // The fingerprint is a pure function of the canonical dump.
    EXPECT_EQ(fingerprintJson(makeConfig(100)),
              fingerprintJson(makeConfig(100)));
}

TEST(Archive, ResolvesHeadIdAndLabelRefs)
{
    ScratchDir scratch;
    RunArchive ar(scratch.dir());
    ar.append(makeConfig(1), "baseline", "run",
              {makeRun("sieve", 1.0)});
    ar.append(makeConfig(2), "", "run", {makeRun("sieve", 1.1)});
    // A re-used label names the newest entry carrying it.
    ar.append(makeConfig(3), "baseline", "run",
              {makeRun("sieve", 1.2)});

    EXPECT_EQ(ar.resolve("HEAD").summary.id, 3);
    EXPECT_EQ(ar.resolve("HEAD~0").summary.id, 3);
    EXPECT_EQ(ar.resolve("HEAD~2").summary.id, 1);
    EXPECT_EQ(ar.resolve("2").summary.id, 2);
    EXPECT_EQ(ar.resolve("baseline").summary.id, 3);

    EXPECT_THROW(ar.resolve("HEAD~3"), FatalError);
    EXPECT_THROW(ar.resolve("7"), FatalError);
    EXPECT_THROW(ar.resolve("no-such-label"), FatalError);
}

TEST(Archive, EmptyArchiveAndEmptyAppendAreLoudErrors)
{
    ScratchDir scratch;
    RunArchive ar(scratch.dir());
    EXPECT_THROW(ar.resolve("HEAD"), FatalError);
    EXPECT_THROW(ar.append(makeConfig(1), "", "run", {}),
                 FatalError);
}

TEST(Archive, QuarantinesCorruptedEntriesAndKeepsScanning)
{
    ScratchDir scratch;
    RunArchive ar(scratch.dir());
    ar.append(makeConfig(1), "good", "run", {makeRun("sieve", 1.0)});

    // Plant garbage where an entry should be (no .bak to fall back
    // to): scan must quarantine it, not abort.
    {
        std::ofstream bad(scratch.path("entry-000002.json"));
        bad << "{ this is not a durable envelope";
    }
    ScanResult scan = ar.scan();
    ASSERT_EQ(scan.entries.size(), 1u);
    EXPECT_EQ(scan.entries[0].label, "good");
    ASSERT_EQ(scan.quarantined.size(), 1u);
    EXPECT_NE(scan.quarantined[0].find(".quarantine"),
              std::string::npos);
    EXPECT_EQ(scan.quarantinedPresent, 1);
    // The quarantined bytes survive for forensics...
    std::ifstream aside(scan.quarantined[0]);
    EXPECT_TRUE(aside.good());
    // ...and later scans are clean (the file was renamed aside) but
    // still report how many quarantined files the directory holds.
    ScanResult again = ar.scan();
    EXPECT_EQ(again.entries.size(), 1u);
    EXPECT_TRUE(again.quarantined.empty());
    EXPECT_EQ(again.quarantinedPresent, 1);
}

TEST(Archive, TruncatedEntryFallsBackToBackupOrQuarantine)
{
    ScratchDir scratch;
    RunArchive ar(scratch.dir());
    ar.append(makeConfig(1), "v1", "run", {makeRun("sieve", 1.0)});
    std::string p = scratch.path("entry-000001.json");

    // Truncate the entry mid-file, as a crashed writer or bit rot
    // would. With no .bak the file is unusable: quarantined.
    {
        std::ofstream trunc(p, std::ios::trunc);
        trunc << "{\"format\":\"rigorbench-state\",\"ver";
    }
    ScanResult scan = ar.scan();
    EXPECT_TRUE(scan.entries.empty());
    ASSERT_EQ(scan.quarantined.size(), 1u);

    // A fresh append still works and does not reuse the id.
    int id = ar.append(makeConfig(1), "v2", "run",
                       {makeRun("sieve", 1.0)});
    EXPECT_EQ(id, 2);

    // Now plant a verified backup next to a truncated entry: the
    // loader recovers from the .bak and the entry survives the scan.
    std::string p2 = scratch.path("entry-000002.json");
    std::string content;
    {
        std::ifstream in(p2);
        std::getline(in, content, '\0');
    }
    {
        std::ofstream bak(stateBackupPath(p2));
        bak << content;
        std::ofstream trunc(p2, std::ios::trunc);
        trunc << content.substr(0, content.size() / 2);
    }
    ScanResult recovered = ar.scan();
    ASSERT_EQ(recovered.entries.size(), 1u);
    EXPECT_EQ(recovered.entries[0].label, "v2");
    EXPECT_TRUE(recovered.quarantined.empty());
}

TEST(Archive, QuarantineIsIdempotentAcrossRepeatedDamage)
{
    ScratchDir scratch;
    RunArchive ar(scratch.dir());
    ar.append(makeConfig(1), "", "run", {makeRun("sieve", 1.0)});
    // Damage the same path twice (quarantine, then re-plant): the
    // second quarantine must pick a fresh name, not clobber the
    // first forensic copy.
    for (int round = 0; round < 2; ++round) {
        std::ofstream bad(scratch.path("entry-000001.json"),
                          std::ios::trunc);
        bad << "garbage round " << round;
        bad.close();
        ScanResult scan = ar.scan();
        ASSERT_EQ(scan.quarantined.size(), 1u) << "round " << round;
        EXPECT_EQ(scan.quarantinedPresent, round + 1);
    }
    std::string first, second;
    ASSERT_TRUE(readFile(
        scratch.path("entry-000001.json.quarantine"), first));
    ASSERT_TRUE(readFile(
        scratch.path("entry-000001.json.quarantine.2"), second));
    EXPECT_NE(first, second);
}

TEST(Archive, AppendSweepsOrphanedTmpWithoutReusingItsId)
{
    ScratchDir scratch;
    RunArchive ar(scratch.dir());
    ar.append(makeConfig(1), "", "run", {makeRun("sieve", 1.0)});
    // A crashed writer left entry 2's staging file behind: the next
    // append must remove it, yet still count its id as taken.
    {
        std::ofstream tmp(scratch.path("entry-000002.json.tmp"));
        tmp << "partial bytes from a dead process";
    }
    int id = ar.append(makeConfig(1), "", "run",
                       {makeRun("sieve", 1.1)});
    EXPECT_EQ(id, 3);
    std::string dummy;
    EXPECT_FALSE(
        readFile(scratch.path("entry-000002.json.tmp"), dummy));
}

TEST(Archive, FutureVersionEntriesAreSkippedInPlace)
{
    ScratchDir scratch;
    RunArchive ar(scratch.dir());
    ar.append(makeConfig(1), "good", "run", {makeRun("sieve", 1.0)});
    // Hand-craft an entry claiming a future schema version inside a
    // valid envelope: a downgraded build must leave it alone.
    Json payload = Json::object();
    payload.set("schema", "rigorbench-archive-entry");
    payload.set("version", 999);
    payload.set("fingerprint", "f");
    payload.set("command", "run");
    payload.set("runs", Json::array());
    writeStateFile(scratch.path("entry-000002.json"), payload);

    ScanResult scan = ar.scan();
    ASSERT_EQ(scan.entries.size(), 1u);
    EXPECT_TRUE(scan.quarantined.empty());
    std::string still;
    EXPECT_TRUE(
        readFile(scratch.path("entry-000002.json"), still));
    // The future entry's id still counts for monotonicity.
    EXPECT_EQ(ar.append(makeConfig(1), "", "run",
                        {makeRun("sieve", 1.0)}),
              3);
}

TEST(Archive, ScanUnderHeldLockIsReadOnly)
{
    ScratchDir scratch;
    RunArchive ar(scratch.dir());
    ar.append(makeConfig(1), "", "run", {makeRun("sieve", 1.0)});
    {
        std::ofstream bad(scratch.path("entry-000002.json"));
        bad << "garbage";
    }
    // While a writer holds the lock, a scan that would quarantine
    // degrades to read-only: the damaged file stays where it is.
    FileLock held = FileLock::tryAcquire(ar.lockPath());
    ASSERT_TRUE(held.held());
    ScanResult scan = ar.scan();
    ASSERT_EQ(scan.entries.size(), 1u);
    EXPECT_TRUE(scan.quarantined.empty());
    std::string still;
    EXPECT_TRUE(readFile(scratch.path("entry-000002.json"), still));
    held.release();

    // Lock released: the next scan quarantines as usual.
    ScanResult after = ar.scan();
    EXPECT_EQ(after.quarantined.size(), 1u);
}

TEST(FileLockTest, ExclusionAndRelease)
{
    ScratchDir scratch;
    std::string p = scratch.path(".lock");
    FileLock a = FileLock::tryAcquire(p);
    ASSERT_TRUE(a.held());
    // flock is per open-file-description, so a second acquire in the
    // same process conflicts just like another process would.
    FileLock b = FileLock::tryAcquire(p);
    EXPECT_FALSE(b.held());
    // Bounded retry gives up (quickly here) instead of hanging.
    FileLock c = FileLock::acquire(p, 3, 0.1, 0.4);
    EXPECT_FALSE(c.held());
    a.release();
    EXPECT_FALSE(a.held());
    FileLock d = FileLock::acquire(p);
    EXPECT_TRUE(d.held());
}

TEST(Archive, PruneKeepsNewestAndNeverReusesIds)
{
    ScratchDir scratch;
    RunArchive ar(scratch.dir());
    for (int i = 0; i < 4; ++i)
        ar.append(makeConfig(i), "", "run", {makeRun("sieve", 1.0)});

    EXPECT_THROW(ar.prune(0), FatalError);
    EXPECT_EQ(ar.prune(2), 2);
    ScanResult scan = ar.scan();
    ASSERT_EQ(scan.entries.size(), 2u);
    EXPECT_EQ(scan.entries[0].id, 3);
    EXPECT_EQ(scan.entries[1].id, 4);
    // Pruning below the current count is a no-op...
    EXPECT_EQ(ar.prune(10), 0);
    // ...and new entries continue the sequence past pruned ids.
    EXPECT_EQ(ar.append(makeConfig(9), "", "run",
                        {makeRun("sieve", 1.0)}),
              5);
}

} // namespace
} // namespace archive
} // namespace rigor
