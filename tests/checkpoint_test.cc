/**
 * @file
 * Checkpoint/resume tests: metrics and trace snapshots must restore
 * bit-exactly and continue the original accumulation; a run that is
 * interrupted at a commit boundary, checkpointed, rebuilt from the
 * checkpoint and resumed must produce artifacts byte-identical to an
 * uninterrupted run — at any job count, under injected faults, and
 * regardless of which checkpoint the resume starts from (cadence
 * invariance).
 */

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "harness/fault.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "support/interrupt.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace rigor {
namespace harness {
namespace {

RunnerConfig
baseConfig(int jobs, MetricsRegistry *metrics, TraceEmitter *trace)
{
    RunnerConfig cfg;
    cfg.invocations = 6;
    cfg.iterations = 5;
    cfg.tier = vm::Tier::Interp;
    cfg.seed = 0xabc;
    cfg.jobs = jobs;
    cfg.size = workloads::findWorkload("sieve").testSize;
    cfg.metrics = metrics;
    cfg.trace = trace;
    return cfg;
}

/** Every artifact of one run, serialized for byte comparison. */
struct Artifacts
{
    std::string report;
    std::string metrics;
    std::string trace;
    std::string logs;
};

/** One onCheckpoint capture: exactly what the CLI persists. */
struct Snapshot
{
    Json run;
    Json metrics;
    Json trace;
};

/** Clears the process-wide interrupt flag even if a test fails. */
struct InterruptGuard
{
    InterruptGuard() { clearInterruptRequest(); }
    ~InterruptGuard() { clearInterruptRequest(); }
};

/** The uninterrupted reference run (same shape as parallel_test). */
Artifacts
referenceRun(int jobs, const FaultPlan *plan)
{
    MetricsRegistry reg;
    TraceEmitter tr;
    auto cfg = baseConfig(jobs, &reg, &tr);
    FaultInjector inj(plan ? *plan : FaultPlan(), cfg.seed);
    if (plan)
        cfg.faults = &inj;

    Artifacts a;
    LogSink prev = setLogSink(
        [&a](LogLevel level, const std::string &msg) {
            a.logs += logLevelName(level);
            a.logs += ": ";
            a.logs += msg;
            a.logs += "\n";
        });
    RunResult run = runExperiment("sieve", cfg);
    setLogSink(std::move(prev));

    a.report = runToJson(run).dump(2);
    a.metrics = reg.toJson().dump(2);
    a.trace = tr.toJson().dump(1);
    return a;
}

/**
 * Phase 1: run at `jobsFirst` with checkpointEvery == 2 and request
 * an interrupt from inside the first checkpoint, so the runner stops
 * at the next commit boundary (where it writes a final checkpoint).
 * Phase 2: rebuild run/metrics/trace from that final checkpoint into
 * fresh objects and resume at `jobsResume`. Log output of both phases
 * is concatenated: an interrupted-then-resumed run must produce the
 * same message stream as an uninterrupted one.
 */
Artifacts
interruptAndResume(int jobsFirst, int jobsResume,
                   const FaultPlan *plan)
{
    InterruptGuard guard;
    Artifacts a;
    LogSink prev = setLogSink(
        [&a](LogLevel level, const std::string &msg) {
            a.logs += logLevelName(level);
            a.logs += ": ";
            a.logs += msg;
            a.logs += "\n";
        });

    Snapshot snap;
    {
        MetricsRegistry reg;
        TraceEmitter tr;
        auto cfg = baseConfig(jobsFirst, &reg, &tr);
        FaultInjector inj(plan ? *plan : FaultPlan(), cfg.seed);
        if (plan)
            cfg.faults = &inj;
        cfg.checkpointEvery = 2;
        int fires = 0;
        cfg.onCheckpoint = [&](const RunResult &r) {
            snap.run = runToJson(r);
            snap.metrics = reg.toJson();
            snap.trace = tr.checkpointJson();
            if (++fires == 1)
                requestInterrupt();
        };
        RunResult first = runExperiment("sieve", cfg);
        EXPECT_TRUE(first.interrupted);
        EXPECT_LT(first.invocationsAttempted, cfg.invocations);
        clearInterruptRequest();
    }

    MetricsRegistry reg;
    TraceEmitter tr;
    auto cfg = baseConfig(jobsResume, &reg, &tr);
    FaultInjector inj(plan ? *plan : FaultPlan(), cfg.seed);
    if (plan)
        cfg.faults = &inj;
    RunResult run = runFromJson(snap.run);
    reg.restoreFromJson(snap.metrics);
    tr.restoreCheckpoint(snap.trace);
    resumeExperiment(workloads::findWorkload("sieve"), cfg, run);
    setLogSink(std::move(prev));

    a.report = runToJson(run).dump(2);
    a.metrics = reg.toJson().dump(2);
    a.trace = tr.toJson().dump(1);
    return a;
}

void
expectIdentical(const Artifacts &want, const Artifacts &got)
{
    EXPECT_EQ(want.report, got.report);
    EXPECT_EQ(want.metrics, got.metrics);
    EXPECT_EQ(want.trace, got.trace);
    EXPECT_EQ(want.logs, got.logs);
}

TEST(Checkpoint, MetricsRestoreIsBitExact)
{
    MetricsRegistry ref;
    ref.counter("c").inc(3);
    ref.gauge("g").set(2.5);
    Histogram &h = ref.histogram("h", {1.0, 10.0});
    for (double v : {0.1, 0.2, 5.0, 50.0})
        h.observe(v);

    Json snap = ref.toJson();
    MetricsRegistry restored;
    restored.restoreFromJson(snap);
    EXPECT_EQ(restored.toJson().dump(2), snap.dump(2));

    // Continued observations accumulate on the restored partial sums
    // exactly as they would have on the originals.
    for (MetricsRegistry *r : {&ref, &restored}) {
        r->counter("c").inc();
        r->gauge("g").set(9.0);
        r->histogram("h", {1.0, 10.0}).observe(0.3);
    }
    EXPECT_EQ(restored.toJson().dump(2), ref.toJson().dump(2));
}

TEST(Checkpoint, MetricsRestoreRequiresEmptyRegistry)
{
    MetricsRegistry ref;
    ref.counter("c").inc();
    Json snap = ref.toJson();
    MetricsRegistry dirty;
    dirty.counter("x").inc();
    EXPECT_THROW(dirty.restoreFromJson(snap), PanicError);
}

TEST(Checkpoint, TraceRestoreContinuesClockArithmetic)
{
    TraceEmitter ref;
    ref.advanceMs(0.1);
    ref.beginSpan("suite", "harness");
    ref.advanceMs(0.2);
    ref.instant("x", "t");

    // Snapshot mid-span, restore into a pristine emitter, then drive
    // both identically: documents must come out byte-identical (the
    // restored clock continues the same floating-point accumulation).
    Json snap = ref.checkpointJson();
    TraceEmitter restored;
    restored.restoreCheckpoint(snap);
    EXPECT_EQ(restored.openSpans(), ref.openSpans());
    for (TraceEmitter *t : {&ref, &restored}) {
        t->advanceMs(0.3);
        t->logInstant("info", "hello");
        t->endSpan();
    }
    EXPECT_EQ(restored.toJson().dump(1), ref.toJson().dump(1));
}

TEST(Checkpoint, TraceRestoreRequiresPristineEmitter)
{
    TraceEmitter ref;
    ref.instant("x", "t");
    Json snap = ref.checkpointJson();
    TraceEmitter dirty;
    dirty.advanceMs(1.0);
    EXPECT_THROW(dirty.restoreCheckpoint(snap), PanicError);
    TraceEmitter buffered(true);
    EXPECT_THROW(buffered.restoreCheckpoint(snap), PanicError);
}

TEST(Checkpoint, InterruptResumeIsByteIdenticalSerial)
{
    Artifacts ref = referenceRun(1, nullptr);
    Artifacts resumed = interruptAndResume(1, 1, nullptr);
    expectIdentical(ref, resumed);
    EXPECT_NE(ref.report.find("invocations"), std::string::npos);
}

TEST(Checkpoint, InterruptResumeIsByteIdenticalAcrossJobCounts)
{
    // The acceptance criterion: interrupt at one job count, resume at
    // another, end up byte-identical to never having been interrupted.
    Artifacts ref = referenceRun(1, nullptr);
    expectIdentical(ref, interruptAndResume(1, 4, nullptr));
    expectIdentical(ref, interruptAndResume(4, 1, nullptr));
    expectIdentical(ref, interruptAndResume(4, 4, nullptr));
}

TEST(Checkpoint, InterruptResumeWithFaultsIsByteIdentical)
{
    FaultPlan plan;
    plan.add("throw:inv=1:n=1");
    plan.add("stall:inv=3:n=1:mag=4");
    Artifacts ref = referenceRun(1, &plan);
    Artifacts resumed = interruptAndResume(1, 4, &plan);
    expectIdentical(ref, resumed);
    EXPECT_NE(ref.logs.find("attempt 0 failed"), std::string::npos);
}

TEST(Checkpoint, ResumeFromAnyCheckpointMatchesReference)
{
    // Cadence invariance: checkpoint after every commit, then resume
    // from each snapshot in turn. Every resume must converge on the
    // same final report/metrics/trace (logs are excluded: the resumed
    // portion legitimately re-emits only its own messages).
    Artifacts ref = referenceRun(1, nullptr);

    std::vector<Snapshot> snaps;
    {
        MetricsRegistry reg;
        TraceEmitter tr;
        auto cfg = baseConfig(1, &reg, &tr);
        cfg.checkpointEvery = 1;
        cfg.onCheckpoint = [&](const RunResult &r) {
            snaps.push_back(
                {runToJson(r), reg.toJson(), tr.checkpointJson()});
        };
        (void)runExperiment("sieve", cfg);
    }
    ASSERT_EQ(snaps.size(), 6u);

    for (const Snapshot &snap : snaps) {
        MetricsRegistry reg;
        TraceEmitter tr;
        auto cfg = baseConfig(1, &reg, &tr);
        RunResult run = runFromJson(snap.run);
        reg.restoreFromJson(snap.metrics);
        tr.restoreCheckpoint(snap.trace);
        resumeExperiment(workloads::findWorkload("sieve"), cfg, run);
        EXPECT_EQ(ref.report, runToJson(run).dump(2));
        EXPECT_EQ(ref.metrics, reg.toJson().dump(2));
        EXPECT_EQ(ref.trace, tr.toJson().dump(1));
    }
}

TEST(Checkpoint, CheckpointCadenceDoesNotChangeArtifacts)
{
    // A run that merely *writes* checkpoints (at any cadence) must
    // produce the same artifacts as one that writes none.
    Artifacts ref = referenceRun(1, nullptr);
    for (int every : {1, 2, 5}) {
        MetricsRegistry reg;
        TraceEmitter tr;
        auto cfg = baseConfig(1, &reg, &tr);
        cfg.checkpointEvery = every;
        int fires = 0;
        cfg.onCheckpoint = [&fires](const RunResult &) { ++fires; };
        RunResult run = runExperiment("sieve", cfg);
        EXPECT_EQ(fires, cfg.invocations / every);
        EXPECT_EQ(ref.report, runToJson(run).dump(2));
        EXPECT_EQ(ref.metrics, reg.toJson().dump(2));
        EXPECT_EQ(ref.trace, tr.toJson().dump(1));
    }
}

} // namespace
} // namespace harness
} // namespace rigor
