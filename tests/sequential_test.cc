/**
 * @file
 * Sequential-stopping design tests: convergence, budget caps,
 * extension determinism (extending a run equals asking for more
 * invocations upfront), and parameter validation.
 */

#include <gtest/gtest.h>

#include "harness/fault.hh"
#include "harness/report.hh"
#include "harness/sequential.hh"
#include "support/logging.hh"

namespace rigor {
namespace harness {
namespace {

RunnerConfig
baseConfig()
{
    RunnerConfig cfg;
    cfg.iterations = 10;
    cfg.tier = vm::Tier::Interp;
    cfg.seed = 0x123;
    cfg.size = workloads::findWorkload("sieve").testSize;
    return cfg;
}

TEST(Sequential, ConvergesOnLowNoiseWorkload)
{
    SequentialConfig seq;
    seq.targetRelativeHalfWidth = 0.05;
    seq.maxInvocations = 40;
    auto res = runSequential("sieve", baseConfig(), seq);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.invocationsUsed, 40);
    EXPECT_GE(res.invocationsUsed, seq.minInvocations);
    EXPECT_LE(res.estimate.ci.relativeHalfWidth(), 0.05);
    EXPECT_EQ(res.run.invocations.size(),
              static_cast<size_t>(res.invocationsUsed));
}

TEST(Sequential, BudgetCapRespected)
{
    SequentialConfig seq;
    seq.targetRelativeHalfWidth = 1e-6;  // unreachable
    seq.minInvocations = 3;
    seq.maxInvocations = 7;
    auto res = runSequential("sieve", baseConfig(), seq);
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.invocationsUsed, 7);
}

TEST(Sequential, WidthTrajectoryShrinks)
{
    SequentialConfig seq;
    seq.targetRelativeHalfWidth = 0.01;
    seq.maxInvocations = 30;
    auto res = runSequential("sieve", baseConfig(), seq);
    ASSERT_GE(res.widthTrajectory.size(), 2u);
    EXPECT_LT(res.widthTrajectory.back(),
              res.widthTrajectory.front());
}

TEST(Sequential, InvalidConfigsRejected)
{
    SequentialConfig seq;
    seq.minInvocations = 1;
    EXPECT_THROW(runSequential("sieve", baseConfig(), seq),
                 FatalError);
    seq.minInvocations = 5;
    seq.maxInvocations = 3;
    EXPECT_THROW(runSequential("sieve", baseConfig(), seq),
                 FatalError);
    seq = {};
    seq.batchSize = 0;
    EXPECT_THROW(runSequential("sieve", baseConfig(), seq),
                 FatalError);
}

TEST(ExtendExperiment, MatchesUpfrontRun)
{
    const auto &spec = workloads::findWorkload("queens");
    RunnerConfig cfg = baseConfig();
    cfg.size = spec.testSize;
    cfg.invocations = 6;
    RunResult upfront = runExperiment(spec, cfg);

    cfg.invocations = 2;
    RunResult grown = runExperiment(spec, cfg);
    extendExperiment(spec, cfg, grown, 4);

    ASSERT_EQ(upfront.invocations.size(), grown.invocations.size());
    for (size_t i = 0; i < upfront.invocations.size(); ++i) {
        EXPECT_EQ(upfront.invocations[i].invocationSeed,
                  grown.invocations[i].invocationSeed);
        auto a = upfront.invocations[i].times();
        auto b = grown.invocations[i].times();
        ASSERT_EQ(a.size(), b.size());
        for (size_t j = 0; j < a.size(); ++j)
            EXPECT_DOUBLE_EQ(a[j], b[j]) << i << "," << j;
    }
}

TEST(Sequential, SurvivesInjectedFault)
{
    FaultPlan plan;
    plan.add("throw:inv=2:n=1");
    RunnerConfig base = baseConfig();
    FaultInjector inj(std::move(plan), base.seed);
    base.faults = &inj;
    base.maxRetries = 1;

    SequentialConfig seq;
    seq.targetRelativeHalfWidth = 0.05;
    seq.maxInvocations = 40;
    auto res = runSequential("sieve", base, seq);

    // The mid-run fault is retried and the stopping rule still
    // converges on the remaining evidence.
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.run.failures.size(), 1u);
    EXPECT_EQ(res.run.failures[0].invocation, 2);
    EXPECT_GE(res.invocationsUsed, seq.minInvocations);
}

TEST(Sequential, QuarantinedWorkloadReturnsPartial)
{
    FaultPlan plan;
    plan.add("throw:n=99");  // every attempt of every invocation
    RunnerConfig base = baseConfig();
    FaultInjector inj(std::move(plan), base.seed);
    base.faults = &inj;
    base.maxRetries = 0;
    base.quarantineAfter = 2;

    auto res = runSequential("sieve", base, {});
    EXPECT_FALSE(res.converged);
    EXPECT_TRUE(res.run.quarantined);
    EXPECT_EQ(res.invocationsUsed, 0);
    EXPECT_EQ(res.run.failures.size(), 2u);
}

TEST(SuiteState, ResumeRoundTrip)
{
    SuiteState state;
    state.seed = 0xc0ffee;
    state.invocations = 8;
    state.iterations = 20;

    SuiteWorkloadState ok;
    ok.name = "sieve";
    ok.interpMs = 1.5;
    ok.adaptiveMs = 0.5;
    ok.threadedMs = 0.6;
    ok.speedup.ci = {3.0, 2.8, 3.2, 0.95};
    ok.speedup.significant = true;
    ok.threadedSpeedup.ci = {2.5, 2.3, 2.7, 0.95};
    ok.threadedSpeedup.significant = true;
    ok.failureCount = 1;
    state.workloads.push_back(ok);

    SuiteWorkloadState bad;
    bad.name = "queens";
    bad.failed = true;
    bad.quarantined = true;
    bad.failureCount = 6;
    state.workloads.push_back(bad);

    Json doc = Json::parse(suiteStateToJson(state).dump(2));
    SuiteState restored = suiteStateFromJson(doc);

    EXPECT_EQ(restored.seed, state.seed);
    EXPECT_EQ(restored.invocations, 8);
    EXPECT_EQ(restored.iterations, 20);
    ASSERT_EQ(restored.workloads.size(), 2u);

    const auto *r_ok = restored.find("sieve");
    ASSERT_NE(r_ok, nullptr);
    EXPECT_FALSE(r_ok->failed);
    EXPECT_DOUBLE_EQ(r_ok->interpMs, 1.5);
    EXPECT_DOUBLE_EQ(r_ok->adaptiveMs, 0.5);
    EXPECT_DOUBLE_EQ(r_ok->threadedMs, 0.6);
    EXPECT_DOUBLE_EQ(r_ok->speedup.ci.estimate, 3.0);
    EXPECT_DOUBLE_EQ(r_ok->speedup.ci.lower, 2.8);
    EXPECT_TRUE(r_ok->speedup.significant);
    EXPECT_DOUBLE_EQ(r_ok->threadedSpeedup.ci.estimate, 2.5);
    EXPECT_DOUBLE_EQ(r_ok->threadedSpeedup.ci.upper, 2.7);
    EXPECT_TRUE(r_ok->threadedSpeedup.significant);
    EXPECT_EQ(r_ok->failureCount, 1);

    const auto *r_bad = restored.find("queens");
    ASSERT_NE(r_bad, nullptr);
    EXPECT_TRUE(r_bad->failed);
    EXPECT_TRUE(r_bad->quarantined);
    EXPECT_EQ(r_bad->failureCount, 6);
    EXPECT_EQ(restored.find("nbody"), nullptr);

    EXPECT_THROW(suiteStateFromJson(Json::object()),
                 rigor::PanicError);
}

} // namespace
} // namespace harness
} // namespace rigor
