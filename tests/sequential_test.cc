/**
 * @file
 * Sequential-stopping design tests: convergence, budget caps,
 * extension determinism (extending a run equals asking for more
 * invocations upfront), and parameter validation.
 */

#include <gtest/gtest.h>

#include "harness/sequential.hh"
#include "support/logging.hh"

namespace rigor {
namespace harness {
namespace {

RunnerConfig
baseConfig()
{
    RunnerConfig cfg;
    cfg.iterations = 10;
    cfg.tier = vm::Tier::Interp;
    cfg.seed = 0x123;
    cfg.size = workloads::findWorkload("sieve").testSize;
    return cfg;
}

TEST(Sequential, ConvergesOnLowNoiseWorkload)
{
    SequentialConfig seq;
    seq.targetRelativeHalfWidth = 0.05;
    seq.maxInvocations = 40;
    auto res = runSequential("sieve", baseConfig(), seq);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.invocationsUsed, 40);
    EXPECT_GE(res.invocationsUsed, seq.minInvocations);
    EXPECT_LE(res.estimate.ci.relativeHalfWidth(), 0.05);
    EXPECT_EQ(res.run.invocations.size(),
              static_cast<size_t>(res.invocationsUsed));
}

TEST(Sequential, BudgetCapRespected)
{
    SequentialConfig seq;
    seq.targetRelativeHalfWidth = 1e-6;  // unreachable
    seq.minInvocations = 3;
    seq.maxInvocations = 7;
    auto res = runSequential("sieve", baseConfig(), seq);
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.invocationsUsed, 7);
}

TEST(Sequential, WidthTrajectoryShrinks)
{
    SequentialConfig seq;
    seq.targetRelativeHalfWidth = 0.01;
    seq.maxInvocations = 30;
    auto res = runSequential("sieve", baseConfig(), seq);
    ASSERT_GE(res.widthTrajectory.size(), 2u);
    EXPECT_LT(res.widthTrajectory.back(),
              res.widthTrajectory.front());
}

TEST(Sequential, InvalidConfigsRejected)
{
    SequentialConfig seq;
    seq.minInvocations = 1;
    EXPECT_THROW(runSequential("sieve", baseConfig(), seq),
                 FatalError);
    seq.minInvocations = 5;
    seq.maxInvocations = 3;
    EXPECT_THROW(runSequential("sieve", baseConfig(), seq),
                 FatalError);
    seq = {};
    seq.batchSize = 0;
    EXPECT_THROW(runSequential("sieve", baseConfig(), seq),
                 FatalError);
}

TEST(ExtendExperiment, MatchesUpfrontRun)
{
    const auto &spec = workloads::findWorkload("queens");
    RunnerConfig cfg = baseConfig();
    cfg.size = spec.testSize;
    cfg.invocations = 6;
    RunResult upfront = runExperiment(spec, cfg);

    cfg.invocations = 2;
    RunResult grown = runExperiment(spec, cfg);
    extendExperiment(spec, cfg, grown, 4);

    ASSERT_EQ(upfront.invocations.size(), grown.invocations.size());
    for (size_t i = 0; i < upfront.invocations.size(); ++i) {
        EXPECT_EQ(upfront.invocations[i].invocationSeed,
                  grown.invocations[i].invocationSeed);
        auto a = upfront.invocations[i].times();
        auto b = grown.invocations[i].times();
        ASSERT_EQ(a.size(), b.size());
        for (size_t j = 0; j < a.size(); ++j)
            EXPECT_DOUBLE_EQ(a[j], b[j]) << i << "," << j;
    }
}

} // namespace
} // namespace harness
} // namespace rigor
