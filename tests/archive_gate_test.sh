#!/usr/bin/env bash
# Archive/compare/gate integration test for the rigorbench CLI.
#
# Drives the real binary end to end: two runs of the same
# configuration are archived (at different --jobs values, which must
# not change a single measured byte), compared (byte-identical reports
# across repeats) and gated (no false positive). A deliberately
# de-JIT-ed run is then gated against the fast baseline and must fail
# with the stable exit code 4 (true positive). Archive hygiene is
# exercised by planting a truncated entry (quarantined with a warning,
# list still exits 0) and pruning down to the newest entry.
#
# Usage: archive_gate_test.sh /path/to/rigorbench
set -u

BIN=${1:?usage: $0 /path/to/rigorbench}
WORK=$(mktemp -d /tmp/rigor_archive_XXXXXX)
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

ARCH="$WORK/archive"
# Enough iterations for the JIT to dominate the steady state, so
# disabling it later is an unmistakable regression.
RUN_FLAGS=(run richards --tier adaptive --invocations 4
           --iterations 30 --seed 0xfeed --quiet)

# --- archive two same-config runs at different --jobs ----------------
"$BIN" "${RUN_FLAGS[@]}" --jobs 1 --archive "$ARCH" --label base \
    >/dev/null 2>&1 || fail "archiving run 1 failed (rc=$?)"
"$BIN" "${RUN_FLAGS[@]}" --jobs 4 --archive "$ARCH" --label fast \
    >/dev/null 2>&1 || fail "archiving run 2 failed (rc=$?)"

# --- compare: byte-identical across repeats, exact 1.0 speedup -------
"$BIN" compare HEAD~1 HEAD --archive "$ARCH" \
    >"$WORK/cmp1.md" 2>/dev/null || fail "compare exited $? (want 0)"
"$BIN" compare HEAD~1 HEAD --archive "$ARCH" \
    >"$WORK/cmp2.md" 2>/dev/null ||
    fail "repeated compare exited $? (want 0)"
cmp -s "$WORK/cmp1.md" "$WORK/cmp2.md" ||
    fail "compare reports differ across repeats"
"$BIN" compare HEAD~1 HEAD --archive "$ARCH" \
    --json "$WORK/cmp1.json" >/dev/null 2>&1 ||
    fail "compare --json exited $? (want 0)"
"$BIN" compare HEAD~1 HEAD --archive "$ARCH" \
    --json "$WORK/cmp2.json" >/dev/null 2>&1 ||
    fail "repeated compare --json exited $? (want 0)"
cmp -s "$WORK/cmp1.json" "$WORK/cmp2.json" ||
    fail "compare JSON differs across repeats"
# --jobs 1 vs --jobs 4 source runs measured identical samples, so the
# point speedup is exactly 1.000 and the verdict is inconclusive.
grep -q "1.000 \[" "$WORK/cmp1.md" ||
    fail "same-config compare did not report an exact 1.000 speedup"
grep -q "inconclusive" "$WORK/cmp1.md" ||
    fail "same-config compare was not inconclusive"
grep -q '"schema": "rigorbench-compare"' "$WORK/cmp1.json" ||
    fail "compare JSON carries no schema field"

# --- gate false-positive check: same config must pass ----------------
"$BIN" gate base --archive "$ARCH" >"$WORK/gate_ok.txt" 2>&1
rc=$?
[ "$rc" -eq 0 ] || fail "same-config gate exited $rc (want 0)"
grep -q "PASS" "$WORK/gate_ok.txt" || fail "passing gate said no PASS"

# --- gate true-positive check: de-JIT-ed run must fail with 4 --------
"$BIN" "${RUN_FLAGS[@]}" --jobs 1 --jit-threshold 100000000 \
    --archive "$ARCH" --label slow >/dev/null 2>&1 ||
    fail "archiving the slow run failed (rc=$?)"
"$BIN" gate fast slow --archive "$ARCH" --json "$WORK/gate.json" \
    >"$WORK/gate_fail.txt" 2>&1
rc=$?
[ "$rc" -eq 4 ] || fail "regressed gate exited $rc (want 4)"
grep -q "FAIL" "$WORK/gate_fail.txt" || fail "failing gate said no FAIL"
grep -q '"pass": false' "$WORK/gate.json" ||
    fail "gate JSON does not record the failure"

# --- archive hygiene: truncated entry is quarantined, not fatal ------
printf '{"format":"rigorbench-state","ver' \
    >"$ARCH/entry-000900.json"
"$BIN" archive list --archive "$ARCH" >"$WORK/list.txt" 2>&1
rc=$?
[ "$rc" -eq 0 ] || fail "archive list with a bad entry exited $rc"
grep -q "quarantined" "$WORK/list.txt" ||
    fail "archive list did not report the quarantine"
[ -e "$ARCH/entry-000900.json.quarantine" ] ||
    fail "bad entry was not renamed aside"
[ ! -e "$ARCH/entry-000900.json" ] ||
    fail "bad entry still present after quarantine"
# The healthy entries survived.
grep -q "base" "$WORK/list.txt" && grep -q "slow" "$WORK/list.txt" ||
    fail "healthy entries vanished from the listing"

# --- prune keeps the newest entries ----------------------------------
"$BIN" archive prune --archive "$ARCH" --keep 1 \
    >"$WORK/prune.txt" 2>&1 || fail "archive prune exited $?"
grep -q "pruned 2" "$WORK/prune.txt" ||
    fail "prune did not remove the 2 older entries"
"$BIN" archive list --archive "$ARCH" >"$WORK/list2.txt" 2>&1
grep -q "slow" "$WORK/list2.txt" ||
    fail "prune removed the newest entry"

# --- flag/ref validation uses the stable exit codes ------------------
"$BIN" suite --archive "$ARCH" --resume "$WORK/state.json" \
    >/dev/null 2>&1
rc=$?
[ "$rc" -eq 1 ] || fail "--archive with --resume exited $rc (want 1)"
"$BIN" compare HEAD~1 HEAD >/dev/null 2>&1
rc=$?
[ "$rc" -eq 2 ] ||
    fail "two-ref compare without --archive exited $rc (want 2)"
"$BIN" gate no-such-label --archive "$ARCH" >/dev/null 2>&1
rc=$?
[ "$rc" -eq 2 ] || fail "unknown gate ref exited $rc (want 2)"
"$BIN" archive prune --archive "$ARCH" >/dev/null 2>&1
rc=$?
[ "$rc" -eq 2 ] || fail "prune without --keep exited $rc (want 2)"

echo "PASS: archive/compare/gate integration"
