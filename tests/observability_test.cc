/**
 * @file
 * Harness-observability integration tests: a metered/traced run must
 * produce nonzero VM counters, a well-formed span tree, fault-path
 * instants, and byte-identical artifacts across identical runs.
 */

#include <gtest/gtest.h>

#include "harness/fault.hh"
#include "harness/runner.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace rigor {
namespace harness {
namespace {

RunnerConfig
obsConfig(MetricsRegistry *metrics, TraceEmitter *trace)
{
    RunnerConfig cfg;
    cfg.invocations = 3;
    cfg.iterations = 5;
    cfg.tier = vm::Tier::Interp;
    cfg.seed = 0xabc;
    cfg.size = workloads::findWorkload("sieve").testSize;
    cfg.metrics = metrics;
    cfg.trace = trace;
    return cfg;
}

/** Count trace events matching (ph, name). */
size_t
countEvents(const Json &doc, const std::string &ph,
            const std::string &name)
{
    const Json &evs = doc.at("traceEvents");
    size_t n = 0;
    for (size_t i = 0; i < evs.size(); ++i) {
        const Json &e = evs.at(i);
        if (e.at("ph").asString() == ph &&
            e.at("name").asString() == name)
            ++n;
    }
    return n;
}

TEST(Observability, MeteredRunRecordsHarnessAndVmCounters)
{
    MetricsRegistry reg;
    auto cfg = obsConfig(&reg, nullptr);
    runExperiment("sieve", cfg);

    EXPECT_EQ(reg.counterValue("harness.invocations"), 3u);
    EXPECT_EQ(reg.counterValue("harness.invocations_attempted"), 3u);
    EXPECT_EQ(reg.counterValue("harness.iterations"), 15u);
    EXPECT_EQ(reg.counterValue("harness.failures"), 0u);
    EXPECT_GT(reg.counterValue("vm.interp.bytecodes"), 0u);
    EXPECT_GT(reg.counterValue("vm.interp.uops"), 0u);
    EXPECT_GT(reg.counterValue("vm.interp.dispatches"), 0u);
    EXPECT_GT(reg.counterValue("vm.interp.allocations"), 0u);
    // Interp tier never compiles.
    EXPECT_EQ(reg.counterValue("vm.interp.jit_compiles"), 0u);
}

TEST(Observability, TracedRunHasBalancedSpans)
{
    TraceEmitter tr;
    auto cfg = obsConfig(nullptr, &tr);
    runExperiment("sieve", cfg);
    EXPECT_EQ(tr.openSpans(), 0u);

    // Round-trip through the serializer before inspecting.
    Json doc = Json::parse(tr.toJson().dump(1));
    EXPECT_EQ(countEvents(doc, "B", "workload"), 0u);  // named by wl
    EXPECT_EQ(countEvents(doc, "B", "sieve"), 1u);
    EXPECT_EQ(countEvents(doc, "E", "sieve"), 1u);
    EXPECT_EQ(countEvents(doc, "B", "invocation"), 3u);
    EXPECT_EQ(countEvents(doc, "E", "invocation"), 3u);
    EXPECT_EQ(countEvents(doc, "B", "iteration"), 15u);
    EXPECT_EQ(countEvents(doc, "E", "iteration"), 15u);
}

TEST(Observability, AdaptiveRunEmitsJitCompileInstants)
{
    MetricsRegistry reg;
    TraceEmitter tr;
    auto cfg = obsConfig(&reg, &tr);
    cfg.tier = vm::Tier::Adaptive;
    cfg.jitThreshold = 16;  // compile early so a short run sees it
    runExperiment("sieve", cfg);

    EXPECT_GT(reg.counterValue("vm.adaptive.jit_compiles"), 0u);
    Json doc = tr.toJson();
    EXPECT_GE(countEvents(doc, "i", "jit_compile"), 1u);
}

TEST(Observability, IdenticalRunsProduceIdenticalArtifacts)
{
    std::string trace_a, trace_b, metrics_a, metrics_b;
    for (int round = 0; round < 2; ++round) {
        MetricsRegistry reg;
        TraceEmitter tr;
        auto cfg = obsConfig(&reg, &tr);
        cfg.tier = vm::Tier::Adaptive;
        runExperiment("sieve", cfg);
        (round == 0 ? trace_a : trace_b) = tr.toJson().dump(1);
        (round == 0 ? metrics_a : metrics_b) = reg.toJson().dump(2);
    }
    EXPECT_EQ(trace_a, trace_b);    // modelled clock => byte-identical
    EXPECT_EQ(metrics_a, metrics_b);
}

TEST(Observability, InjectedFaultLeavesRetryTrail)
{
    FaultPlan plan;
    plan.add("throw:inv=1:n=1");
    MetricsRegistry reg;
    TraceEmitter tr;
    auto cfg = obsConfig(&reg, &tr);
    FaultInjector inj(std::move(plan), cfg.seed);
    cfg.faults = &inj;
    cfg.maxRetries = 1;
    RunResult run = runExperiment("sieve", cfg);
    ASSERT_EQ(run.failures.size(), 1u);

    EXPECT_EQ(reg.counterValue("harness.faults_injected"), 1u);
    EXPECT_EQ(reg.counterValue("harness.failures"), 1u);
    EXPECT_EQ(reg.counterValue("harness.failures.vm-error"), 1u);
    EXPECT_EQ(reg.counterValue("harness.retries"), 1u);
    EXPECT_EQ(reg.counterValue("harness.invocations"), 3u);
    // Mirrors RunResult::invocationsAttempted: slots tried, not
    // individual attempts — the retried slot still counts once.
    EXPECT_EQ(reg.counterValue("harness.invocations_attempted"), 3u);

    EXPECT_EQ(tr.openSpans(), 0u);  // the failed span was unwound
    Json doc = tr.toJson();
    EXPECT_EQ(countEvents(doc, "i", "fault_injected"), 1u);
    EXPECT_EQ(countEvents(doc, "i", "invocation_failure"), 1u);
    EXPECT_EQ(countEvents(doc, "i", "retry"), 1u);
    // 4 attempts opened, 4 closed (one via the unwind path).
    EXPECT_EQ(countEvents(doc, "B", "invocation"), 4u);
    EXPECT_EQ(countEvents(doc, "E", "invocation"), 4u);
}

} // namespace
} // namespace harness
} // namespace rigor
