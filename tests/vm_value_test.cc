/**
 * @file
 * Value/object-model unit tests: reference counting, equality and
 * hashing semantics, truthiness, repr, the dict (open addressing,
 * tombstones, insertion order), range and iterators.
 */

#include <gtest/gtest.h>

#include "vm/value.hh"

namespace rigor {
namespace vm {
namespace {

TEST(Value, TagsAndAccessors)
{
    EXPECT_TRUE(Value().isNone());
    EXPECT_TRUE(Value::makeBool(true).asBool());
    EXPECT_EQ(Value::makeInt(-7).asInt(), -7);
    EXPECT_DOUBLE_EQ(Value::makeFloat(2.5).asFloat(), 2.5);
    Value s = makeStr("hi");
    EXPECT_TRUE(s.isObjKind(ObjKind::Str));
}

TEST(Value, RefCountingCopyAndMove)
{
    StrObj *raw = new StrObj("x");
    Value a = Value::makeObj(raw);
    EXPECT_EQ(raw->refs(), 1u);
    {
        Value b = a;  // copy increments
        EXPECT_EQ(raw->refs(), 2u);
        Value c = std::move(b);  // move transfers
        EXPECT_EQ(raw->refs(), 2u);
        EXPECT_TRUE(b.isNone());
    }
    EXPECT_EQ(raw->refs(), 1u);
    a = Value();  // releasing the last ref deletes; no leak under
                  // ASan and no crash here.
}

TEST(Value, AssignmentReleasesOldReference)
{
    StrObj *first = new StrObj("first");
    StrObj *second = new StrObj("second");
    second->incRef();  // keep alive to observe counts
    Value v = Value::makeObj(first);
    v = Value::makeObj(second);
    EXPECT_EQ(second->refs(), 2u);
    v = Value();
    EXPECT_EQ(second->refs(), 1u);
    second->decRef();
}

TEST(Value, SelfAssignmentSafe)
{
    Value v = makeStr("self");
    Value &ref = v;
    v = ref;
    EXPECT_EQ(v.str(), "self");
}

TEST(Value, NumericEqualityCrossesTypes)
{
    EXPECT_TRUE(Value::makeInt(1).equals(Value::makeFloat(1.0)));
    EXPECT_TRUE(Value::makeBool(true).equals(Value::makeInt(1)));
    EXPECT_FALSE(Value::makeInt(1).equals(Value::makeInt(2)));
    EXPECT_FALSE(Value().equals(Value::makeInt(0)));
    EXPECT_TRUE(Value().equals(Value()));
}

TEST(Value, StructuralEqualityForContainers)
{
    auto *l1 = new ListObj();
    l1->items.push_back(Value::makeInt(1));
    l1->items.push_back(makeStr("a"));
    auto *l2 = new ListObj();
    l2->items.push_back(Value::makeInt(1));
    l2->items.push_back(makeStr("a"));
    Value a = Value::makeObj(l1), b = Value::makeObj(l2);
    EXPECT_TRUE(a.equals(b));
    l2->items.push_back(Value());
    EXPECT_FALSE(a.equals(b));
}

TEST(Value, HashConsistency)
{
    uint64_t seed = 12345;
    // Equal values hash equally (including int/float equivalence).
    EXPECT_EQ(Value::makeInt(7).hash(seed),
              Value::makeFloat(7.0).hash(seed));
    EXPECT_EQ(makeStr("key").hash(seed), makeStr("key").hash(seed));
    // Different seeds give different string hashes (randomization).
    EXPECT_NE(makeStr("key").hash(1), makeStr("key").hash(2));
}

TEST(Value, UnhashableTypesThrow)
{
    Value l = Value::makeObj(new ListObj());
    EXPECT_THROW(l.hash(0), VmError);
    Value d = Value::makeObj(new DictObj(0));
    EXPECT_THROW(d.hash(0), VmError);
}

TEST(Value, Truthiness)
{
    EXPECT_FALSE(Value().truthy());
    EXPECT_FALSE(Value::makeInt(0).truthy());
    EXPECT_TRUE(Value::makeInt(-1).truthy());
    EXPECT_FALSE(Value::makeFloat(0.0).truthy());
    EXPECT_FALSE(makeStr("").truthy());
    EXPECT_TRUE(makeStr("x").truthy());
    Value empty_list = Value::makeObj(new ListObj());
    EXPECT_FALSE(empty_list.truthy());
    Value r0 = Value::makeObj(new RangeObj(0, 0, 1));
    EXPECT_FALSE(r0.truthy());
    Value r1 = Value::makeObj(new RangeObj(0, 5, 1));
    EXPECT_TRUE(r1.truthy());
}

TEST(Value, ReprFormats)
{
    EXPECT_EQ(Value().repr(), "None");
    EXPECT_EQ(Value::makeBool(true).repr(), "True");
    EXPECT_EQ(Value::makeFloat(2.0).repr(), "2.0");
    EXPECT_EQ(Value::makeFloat(2.5).repr(), "2.5");
    EXPECT_EQ(makeStr("hi").repr(), "'hi'");
    EXPECT_EQ(makeStr("hi").str(), "hi");
    auto *t = new TupleObj();
    t->items.push_back(Value::makeInt(1));
    EXPECT_EQ(Value::makeObj(t).repr(), "(1,)");
}

TEST(Dict, SetGetOverwrite)
{
    DictObj d(42);
    d.incRef();
    d.set(makeStr("a"), Value::makeInt(1));
    d.set(makeStr("b"), Value::makeInt(2));
    d.set(makeStr("a"), Value::makeInt(10));
    EXPECT_EQ(d.size(), 2u);
    EXPECT_EQ(d.find(makeStr("a"))->asInt(), 10);
    EXPECT_EQ(d.find(makeStr("b"))->asInt(), 2);
    EXPECT_EQ(d.find(makeStr("c")), nullptr);
}

TEST(Dict, EraseAndTombstoneReuse)
{
    DictObj d(7);
    d.incRef();
    for (int i = 0; i < 100; ++i)
        d.set(Value::makeInt(i), Value::makeInt(i * 2));
    for (int i = 0; i < 100; i += 2)
        EXPECT_TRUE(d.erase(Value::makeInt(i)));
    EXPECT_FALSE(d.erase(Value::makeInt(0)));  // already gone
    EXPECT_EQ(d.size(), 50u);
    for (int i = 1; i < 100; i += 2)
        EXPECT_EQ(d.find(Value::makeInt(i))->asInt(), i * 2);
    // Reinsert over tombstones.
    for (int i = 0; i < 100; i += 2)
        d.set(Value::makeInt(i), Value::makeInt(-i));
    EXPECT_EQ(d.size(), 100u);
    EXPECT_EQ(d.find(Value::makeInt(4))->asInt(), -4);
}

TEST(Dict, InsertionOrderSurvivesRehash)
{
    DictObj d(99);
    d.incRef();
    for (int i = 0; i < 200; ++i)
        d.set(makeStr("k" + std::to_string(i)), Value::makeInt(i));
    int expected = 0;
    for (const auto &e : d.entries()) {
        if (!e.live)
            continue;
        EXPECT_EQ(e.value.asInt(), expected);
        ++expected;
    }
    EXPECT_EQ(expected, 200);
}

TEST(Dict, GrowsUnderLoad)
{
    DictObj d(3);
    d.incRef();
    for (int i = 0; i < 10000; ++i)
        d.set(Value::makeInt(i), Value::makeInt(i));
    EXPECT_EQ(d.size(), 10000u);
    for (int i = 0; i < 10000; i += 997)
        EXPECT_NE(d.find(Value::makeInt(i)), nullptr);
    d.clear();
    EXPECT_EQ(d.size(), 0u);
    EXPECT_EQ(d.find(Value::makeInt(5)), nullptr);
}


TEST(Dict, ChurnDoesNotExhaustProbeSlots)
{
    // Insert/erase thousands of distinct keys while keeping the dict
    // small: tombstones must not starve the probe chains (a lookup
    // of an absent key must still terminate).
    DictObj d(11);
    for (int i = 0; i < 20000; ++i) {
        d.set(Value::makeInt(i), Value::makeInt(i));
        if (i >= 8)
            EXPECT_TRUE(d.erase(Value::makeInt(i - 8)));
        // Absent-key lookup exercises full probe chains.
        EXPECT_EQ(d.find(Value::makeInt(-1 - i)), nullptr);
    }
    EXPECT_EQ(d.size(), 8u);
}

TEST(Range, LengthComputation)
{
    EXPECT_EQ(RangeObj(0, 10, 1).length(), 10);
    EXPECT_EQ(RangeObj(0, 10, 3).length(), 4);
    EXPECT_EQ(RangeObj(10, 0, -1).length(), 10);
    EXPECT_EQ(RangeObj(10, 0, -3).length(), 4);
    EXPECT_EQ(RangeObj(5, 5, 1).length(), 0);
    EXPECT_EQ(RangeObj(5, 0, 1).length(), 0);
    EXPECT_THROW(RangeObj(0, 5, 0).length(), VmError);
}

TEST(Iterator, RangeIteration)
{
    Value r = Value::makeObj(new RangeObj(2, 10, 3));
    IteratorObj it(IteratorObj::Source::Range, r);
    Value out;
    std::vector<int64_t> seen;
    while (it.next(out, 0))
        seen.push_back(out.asInt());
    EXPECT_EQ(seen, (std::vector<int64_t>{2, 5, 8}));
}

TEST(Iterator, DictItemsYieldsPairs)
{
    auto *d = new DictObj(5);
    Value dv = Value::makeObj(d);
    d->set(makeStr("x"), Value::makeInt(1));
    d->set(makeStr("y"), Value::makeInt(2));
    IteratorObj it(IteratorObj::Source::DictItems, dv);
    Value out;
    ASSERT_TRUE(it.next(out, 5));
    ASSERT_TRUE(out.isObjKind(ObjKind::Tuple));
    auto *t = static_cast<TupleObj *>(out.asObj());
    EXPECT_EQ(t->items[0].str(), "x");
    EXPECT_EQ(t->items[1].asInt(), 1);
}

TEST(Iterator, SkipsTombstones)
{
    auto *d = new DictObj(5);
    Value dv = Value::makeObj(d);
    for (int i = 0; i < 6; ++i)
        d->set(Value::makeInt(i), Value::makeInt(i));
    d->erase(Value::makeInt(0));
    d->erase(Value::makeInt(3));
    IteratorObj it(IteratorObj::Source::DictKeys, dv);
    Value out;
    std::vector<int64_t> keys;
    while (it.next(out, 5))
        keys.push_back(out.asInt());
    EXPECT_EQ(keys, (std::vector<int64_t>{1, 2, 4, 5}));
}

TEST(ClassObject, LookupWalksBaseChain)
{
    auto *base = new ClassObj(1);
    base->incRef();
    base->name = "Base";
    base->attrs->set(makeStr("m"), Value::makeInt(100));
    auto *derived = new ClassObj(1);
    derived->incRef();
    derived->name = "Derived";
    derived->base = base;
    base->incRef();

    EXPECT_EQ(derived->lookup(makeStr("m"))->asInt(), 100);
    derived->attrs->set(makeStr("m"), Value::makeInt(200));
    EXPECT_EQ(derived->lookup(makeStr("m"))->asInt(), 200);
    EXPECT_EQ(derived->lookup(makeStr("absent")), nullptr);

    derived->decRef();
    base->decRef();
}

} // namespace
} // namespace vm
} // namespace rigor
