#!/usr/bin/env bash
# Serve-daemon integration test for the rigorbench CLI.
#
# Drives the real binary end to end in daemon mode: a job submitted
# over the socket must produce report text and artifacts (json, csv,
# metrics, trace, archive entry) byte-identical to the same
# configuration run at a shell; two clients submit overlapping suites
# that both come back byte-identical to the one-shot reference; an
# archive query (compare) is answered over the socket while jobs are
# in flight; admission control rejects io:* fault injection with the
# documented exit code; and a SIGTERM drain (exit 3) followed by
# `serve --resume` completes the interrupted job with the same report
# an uninterrupted run produces.
#
# Experiments are deliberately small, and the drain's kill delay is
# derived from a measured reference duration so the signal lands
# mid-suite on release builds and on sanitizer builds that run an
# order of magnitude slower.
#
# Usage: serve_smoke_test.sh /path/to/rigorbench
set -u

BIN=${1:?usage: $0 /path/to/rigorbench}
WORK=$(mktemp -d /tmp/rigor_serve_XXXXXX)
SOCK="$WORK/daemon.sock"
STATE="$WORK/daemon-state"
DAEMON_PID=""

cleanup() {
    [ -n "$DAEMON_PID" ] && kill -KILL "$DAEMON_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

start_daemon() { # start_daemon [extra flags...]
    "$BIN" serve --socket "$SOCK" --state-dir "$STATE" \
        --max-queue 8 --max-active 1 "$@" \
        >"$WORK/daemon.out" 2>"$WORK/daemon.err" &
    DAEMON_PID=$!
    # Ready when the status op answers; the daemon creates the socket
    # before accepting, so poll the protocol, not the filesystem.
    local i
    for i in $(seq 1 300); do
        if "$BIN" status --socket "$SOCK" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$DAEMON_PID" 2>/dev/null ||
            fail "daemon died at startup: $(cat "$WORK/daemon.err")"
        sleep 0.1
    done
    fail "daemon never answered on $SOCK"
}

wait_job_done() { # wait_job_done <job-id>
    local id=$1 i state
    for i in $(seq 1 1200); do
        state=$("$BIN" status "$id" --socket "$SOCK" 2>/dev/null |
            sed -n "s/^job #$id: //p")
        case "$state" in
        done) return 0 ;;
        failed | cancelled) fail "job #$id ended as '$state'" ;;
        esac
        sleep 0.25
    done
    fail "job #$id never finished (last state: '${state:-none}')"
}

job_report() { # job_report <job-id>  -> report bytes on stdout
    "$BIN" status "$1" --socket "$SOCK" |
        sed -n '/^--- report ---$/,$p' | tail -n +2
}

# Normalize user-chosen paths out of a report so one-shot and daemon
# reports (which write artifacts into different directories) compare.
scrub_paths() { sed "s|$WORK/[a-z-]*/|DIR/|g" "$1"; }

RUN_FLAGS=(--invocations 3 --iterations 5 --seed 0xabc --label smoke)
SUITE_FLAGS=(--invocations 2 --iterations 2 --size 4 --seed 0xfeed)

# --- reference one-shot artifacts ------------------------------------
mkdir -p "$WORK/one" "$WORK/dmn"
"$BIN" run queens "${RUN_FLAGS[@]}" \
    --json "$WORK/one/run.json" --csv "$WORK/one/run.csv" \
    --metrics "$WORK/one/metrics.json" --trace "$WORK/one/trace.json" \
    --archive "$WORK/one/archive" \
    >"$WORK/one/report.txt" 2>"$WORK/one/stderr.txt" ||
    fail "one-shot reference run failed (rc=$?)"
"$BIN" suite "${SUITE_FLAGS[@]}" --quiet >"$WORK/suite-ref.txt" ||
    fail "one-shot reference suite failed (rc=$?)"

# Client commands without a daemon: exit 7, not a hang or a crash.
"$BIN" status --socket "$SOCK" >/dev/null 2>&1
rc=$?
[ "$rc" -eq 7 ] || fail "status with no daemon exited $rc (want 7)"

start_daemon

# --- byte-identity: daemon-executed run vs one-shot CLI --------------
"$BIN" submit run queens "${RUN_FLAGS[@]}" --socket "$SOCK" \
    --client tenant-a \
    --json "$WORK/dmn/run.json" --csv "$WORK/dmn/run.csv" \
    --metrics "$WORK/dmn/metrics.json" --trace "$WORK/dmn/trace.json" \
    --archive "$WORK/dmn/archive" \
    >"$WORK/dmn/report.txt" 2>"$WORK/dmn/stderr.txt" ||
    fail "submitted run failed (rc=$?)"
for f in run.json run.csv metrics.json trace.json \
    archive/entry-000001.json; do
    cmp -s "$WORK/one/$f" "$WORK/dmn/$f" ||
        fail "daemon artifact $f differs from the one-shot CLI's"
done
diff <(scrub_paths "$WORK/one/report.txt") \
    <(scrub_paths "$WORK/dmn/report.txt") >/dev/null ||
    fail "daemon report text differs from the one-shot CLI's"
echo "ok: daemon artifacts byte-identical to one-shot CLI"

# A second archived run so the archive has two entries to compare.
"$BIN" submit run queens "${RUN_FLAGS[@]}" --socket "$SOCK" \
    --client tenant-a --archive "$WORK/dmn/archive" \
    >/dev/null 2>&1 || fail "second archived run failed (rc=$?)"

# --- two clients, overlapping suites ---------------------------------
out_a=$("$BIN" submit suite "${SUITE_FLAGS[@]}" --quiet \
    --socket "$SOCK" --client tenant-a --no-wait) ||
    fail "tenant-a suite submit failed"
out_b=$("$BIN" submit suite "${SUITE_FLAGS[@]}" --quiet \
    --socket "$SOCK" --client tenant-b --priority 5 --no-wait) ||
    fail "tenant-b suite submit failed"
job_a=$(echo "$out_a" | sed -n 's/^submitted job #//p')
job_b=$(echo "$out_b" | sed -n 's/^submitted job #//p')
[ -n "$job_a" ] && [ -n "$job_b" ] ||
    fail "submit --no-wait did not print job ids"

# While those are queued/running: an archive query over the socket.
"$BIN" compare 1 2 --archive "$WORK/dmn/archive" --socket "$SOCK" \
    >"$WORK/compare.txt" 2>&1 ||
    fail "compare over the socket failed (rc=$?)"
grep -q "queens" "$WORK/compare.txt" ||
    fail "remote compare output names no workload"

# Admission control: io:* faults are rejected with exit 8.
"$BIN" submit run queens --inject io:enospc --socket "$SOCK" \
    >/dev/null 2>&1
rc=$?
[ "$rc" -eq 8 ] || fail "io-fault submit exited $rc (want 8)"

wait_job_done "$job_a"
wait_job_done "$job_b"
job_report "$job_a" >"$WORK/suite-a.txt"
job_report "$job_b" >"$WORK/suite-b.txt"
cmp -s "$WORK/suite-ref.txt" "$WORK/suite-a.txt" ||
    fail "tenant-a suite report differs from the one-shot reference"
cmp -s "$WORK/suite-ref.txt" "$WORK/suite-b.txt" ||
    fail "tenant-b suite report differs from the one-shot reference"
"$BIN" status --socket "$SOCK" >"$WORK/status.txt" ||
    fail "status table failed"
grep -q "tenant-a" "$WORK/status.txt" &&
    grep -q "tenant-b" "$WORK/status.txt" ||
    fail "status table does not attribute jobs to their clients"
echo "ok: overlapping multi-tenant suites byte-identical to reference"

# --- SIGTERM drain, then serve --resume ------------------------------
# A bigger suite so the signal has a window to land mid-job; the nap
# before the SIGTERM scales with a measured one-shot reference.
DRAIN_FLAGS=(--invocations 2 --iterations 3 --seed 0xfeed --quiet)
ref_start=$SECONDS
"$BIN" suite "${DRAIN_FLAGS[@]}" >"$WORK/drain-ref.txt" ||
    fail "drain reference suite failed (rc=$?)"
ref_dur=$((SECONDS - ref_start))
nap=$(awk -v d="$ref_dur" \
    'BEGIN { if (d < 1) d = 1; printf "%.2f", d / 3 }')

out_c=$("$BIN" submit suite "${DRAIN_FLAGS[@]}" --socket "$SOCK" \
    --client tenant-c --no-wait) || fail "drain suite submit failed"
job_c=$(echo "$out_c" | sed -n 's/^submitted job #//p')
[ -n "$job_c" ] || fail "drain submit printed no job id"

sleep "$nap"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
rc=$?
DAEMON_PID=""
[ "$rc" -eq 3 ] || fail "drained daemon exited $rc (want 3)"
[ -s "$STATE/queue.json" ] || fail "drain left no durable queue state"
[ -e "$SOCK" ] && fail "drained daemon left its socket behind"

start_daemon --resume
wait_job_done "$job_c"
job_report "$job_c" >"$WORK/drain-resumed.txt"
cmp -s "$WORK/drain-ref.txt" "$WORK/drain-resumed.txt" ||
    fail "resumed suite report differs from the one-shot reference"
echo "ok: SIGTERM drain + serve --resume reproduced the reference"

# --- clean client-initiated shutdown ---------------------------------
"$BIN" shutdown --socket "$SOCK" >/dev/null ||
    fail "shutdown request failed (rc=$?)"
wait "$DAEMON_PID"
rc=$?
DAEMON_PID=""
[ "$rc" -eq 0 ] || fail "daemon exited $rc after drain shutdown (want 0)"

# --- version / archive-list satellites -------------------------------
"$BIN" version >"$WORK/version.txt" || fail "version exited nonzero"
grep -q "^rigorbench " "$WORK/version.txt" &&
    grep -q "rigorbench-serve" "$WORK/version.txt" ||
    fail "version output misses the binary or serve protocol line"
"$BIN" archive list --archive "$WORK/dmn/archive" --json - \
    >"$WORK/list.json" || fail "archive list --json failed"
grep -q '"schema": "rigorbench-archive-list"' "$WORK/list.json" ||
    fail "archive list --json carries no schema header"

echo "PASS: serve daemon integration"
