/**
 * @file
 * Workload-suite tests: every benchmark compiles, runs on both tiers,
 * produces identical checksums across tiers, hash seeds and repeat
 * iterations, and known closed-form results match.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "vm/compiler.hh"
#include "vm/interp.hh"
#include "workloads/workloads.hh"

namespace rigor {
namespace workloads {
namespace {

using vm::Interp;
using vm::InterpConfig;
using vm::Tier;
using vm::Value;

int64_t
runWorkload(const WorkloadSpec &spec, int64_t size, InterpConfig cfg = {})
{
    vm::Program prog = vm::compileSource(spec.source, spec.name);
    Interp interp(prog, cfg);
    interp.runModule();
    Value result =
        interp.callGlobal("run", {Value::makeInt(size)});
    EXPECT_TRUE(result.isInt())
        << spec.name << " returned " << result.typeName();
    return result.isInt() ? result.asInt() : -1;
}

class WorkloadSuite : public ::testing::TestWithParam<size_t>
{
};

TEST_P(WorkloadSuite, RunsOnInterpreterTier)
{
    const WorkloadSpec &spec = suite()[GetParam()];
    int64_t r = runWorkload(spec, spec.testSize);
    EXPECT_NE(r, -1) << spec.name;
}

TEST_P(WorkloadSuite, TiersAgreeOnChecksum)
{
    const WorkloadSpec &spec = suite()[GetParam()];
    InterpConfig interp_cfg, jit_cfg;
    interp_cfg.tier = Tier::Interp;
    jit_cfg.tier = Tier::Adaptive;
    jit_cfg.jitThreshold = 4;  // force early compilation
    int64_t a = runWorkload(spec, spec.testSize, interp_cfg);
    int64_t b = runWorkload(spec, spec.testSize, jit_cfg);
    EXPECT_EQ(a, b) << spec.name;
}

TEST_P(WorkloadSuite, HashSeedDoesNotChangeChecksum)
{
    const WorkloadSpec &spec = suite()[GetParam()];
    InterpConfig a_cfg, b_cfg;
    a_cfg.hashSeed = 123;
    b_cfg.hashSeed = 987654321;
    EXPECT_EQ(runWorkload(spec, spec.testSize, a_cfg),
              runWorkload(spec, spec.testSize, b_cfg))
        << spec.name;
}

TEST_P(WorkloadSuite, RepeatedIterationsAgree)
{
    const WorkloadSpec &spec = suite()[GetParam()];
    vm::Program prog = vm::compileSource(spec.source, spec.name);
    Interp interp(prog, {});
    interp.runModule();
    Value first = interp.callGlobal(
        "run", {Value::makeInt(spec.testSize)});
    Value second = interp.callGlobal(
        "run", {Value::makeInt(spec.testSize)});
    EXPECT_TRUE(first.equals(second)) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSuite,
    ::testing::Range<size_t>(0, suite().size()),
    [](const ::testing::TestParamInfo<size_t> &info) {
        return suite()[info.param].name;
    });

TEST(WorkloadResults, QueensKnownCounts)
{
    const WorkloadSpec &spec = findWorkload("queens");
    EXPECT_EQ(runWorkload(spec, 6), 4);
    EXPECT_EQ(runWorkload(spec, 8), 92);
}

TEST(WorkloadResults, SieveKnownCounts)
{
    const WorkloadSpec &spec = findWorkload("sieve");
    // 168 primes below 1000; the largest is 997.
    EXPECT_EQ(runWorkload(spec, 1000), 168 * 1000000 + 997);
    // 25 primes below 100; the largest is 97.
    EXPECT_EQ(runWorkload(spec, 100), 25 * 1000000 + 97);
}

TEST(WorkloadResults, BinaryTreesNodeCount)
{
    const WorkloadSpec &spec = findWorkload("binary_trees");
    // For depth 4: long-lived tree check = 2^5 - 1 = 31; stretch
    // iterations contribute deterministically. Just pin the value.
    int64_t r4 = runWorkload(spec, 4);
    EXPECT_EQ(r4, runWorkload(spec, 4));
    EXPECT_GT(r4, 0);
}

TEST(WorkloadResults, FannkuchKnownMaxFlips)
{
    const WorkloadSpec &spec = findWorkload("fannkuch");
    // Known fannkuch results: max flips for n=5 is 7, n=6 is 10.
    EXPECT_EQ(runWorkload(spec, 5) / 1000, 7);
    EXPECT_EQ(runWorkload(spec, 6) / 1000, 10);
}

TEST(WorkloadResults, ChaosInsideCountIsPlausible)
{
    const WorkloadSpec &spec = findWorkload("chaos");
    int64_t inside = runWorkload(spec, 16);
    EXPECT_GT(inside, 0);
    EXPECT_LT(inside, 16 * 16);
}

TEST(WorkloadMeta, SuiteShape)
{
    EXPECT_EQ(suite().size(), 19u);
    for (const auto &w : suite()) {
        EXPECT_FALSE(w.name.empty());
        EXPECT_FALSE(w.description.empty());
        EXPECT_GT(w.defaultSize, 0);
        EXPECT_GT(w.testSize, 0);
        EXPECT_LE(w.testSize, w.defaultSize);
    }
    EXPECT_THROW(findWorkload("nope"), rigor::FatalError);
}

} // namespace
} // namespace workloads
} // namespace rigor
