/**
 * @file
 * Lexer tests: token streams, indentation handling, literals,
 * operators, comments, line joining, and error reporting.
 */

#include <gtest/gtest.h>

#include "vm/lexer.hh"

namespace rigor {
namespace vm {
namespace {

std::vector<Tok>
kinds(const std::string &src)
{
    std::vector<Tok> out;
    for (const auto &t : tokenize(src))
        out.push_back(t.kind);
    return out;
}

TEST(Lexer, SimpleAssignment)
{
    auto ks = kinds("x = 1\n");
    ASSERT_EQ(ks.size(), 5u);
    EXPECT_EQ(ks[0], Tok::Name);
    EXPECT_EQ(ks[1], Tok::Assign);
    EXPECT_EQ(ks[2], Tok::IntLit);
    EXPECT_EQ(ks[3], Tok::Newline);
    EXPECT_EQ(ks[4], Tok::EndOfFile);
}

TEST(Lexer, IntAndFloatLiterals)
{
    auto toks = tokenize("42 3.5 0.25 1e3 2.5e-2 0x1f\n");
    EXPECT_EQ(toks[0].kind, Tok::IntLit);
    EXPECT_EQ(toks[0].intValue, 42);
    EXPECT_EQ(toks[1].kind, Tok::FloatLit);
    EXPECT_DOUBLE_EQ(toks[1].floatValue, 3.5);
    EXPECT_DOUBLE_EQ(toks[2].floatValue, 0.25);
    EXPECT_EQ(toks[3].kind, Tok::FloatLit);
    EXPECT_DOUBLE_EQ(toks[3].floatValue, 1000.0);
    EXPECT_DOUBLE_EQ(toks[4].floatValue, 0.025);
    EXPECT_EQ(toks[5].kind, Tok::IntLit);
    EXPECT_EQ(toks[5].intValue, 31);
}

TEST(Lexer, StringLiteralsAndEscapes)
{
    auto toks = tokenize("'a' \"b\" 'don\\'t' 'tab\\there'\n");
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[2].text, "don't");
    EXPECT_EQ(toks[3].text, "tab\there");
}

TEST(Lexer, KeywordsVsNames)
{
    auto toks = tokenize("if iffy for fortune\n");
    EXPECT_EQ(toks[0].kind, Tok::KwIf);
    EXPECT_EQ(toks[1].kind, Tok::Name);
    EXPECT_EQ(toks[1].text, "iffy");
    EXPECT_EQ(toks[2].kind, Tok::KwFor);
    EXPECT_EQ(toks[3].text, "fortune");
}

TEST(Lexer, IndentDedent)
{
    auto ks = kinds("if x:\n    y = 1\nz = 2\n");
    // if x : NL INDENT y = 1 NL DEDENT z = 2 NL EOF
    std::vector<Tok> expect = {
        Tok::KwIf,   Tok::Name,    Tok::Colon,  Tok::Newline,
        Tok::Indent, Tok::Name,    Tok::Assign, Tok::IntLit,
        Tok::Newline, Tok::Dedent, Tok::Name,   Tok::Assign,
        Tok::IntLit, Tok::Newline, Tok::EndOfFile,
    };
    EXPECT_EQ(ks, expect);
}

TEST(Lexer, NestedIndentationClosesAllLevels)
{
    auto ks = kinds("if a:\n    if b:\n        c = 1\n");
    int indents = 0, dedents = 0;
    for (auto k : ks) {
        if (k == Tok::Indent)
            ++indents;
        if (k == Tok::Dedent)
            ++dedents;
    }
    EXPECT_EQ(indents, 2);
    EXPECT_EQ(dedents, 2);
}

TEST(Lexer, BlankLinesAndCommentsIgnored)
{
    auto ks = kinds("x = 1\n\n# comment\n   # indented comment\n"
                    "y = 2\n");
    int newlines = 0;
    for (auto k : ks)
        if (k == Tok::Newline)
            ++newlines;
    EXPECT_EQ(newlines, 2);  // only the two real statements
}

TEST(Lexer, TrailingCommentOnCodeLine)
{
    auto ks = kinds("x = 1  # set x\n");
    EXPECT_EQ(ks[3], Tok::Newline);
}

TEST(Lexer, ImplicitLineJoiningInsideBrackets)
{
    auto ks = kinds("x = [1,\n     2,\n     3]\n");
    // No Newline/Indent tokens inside the brackets.
    int newlines = 0;
    for (auto k : ks) {
        if (k == Tok::Newline)
            ++newlines;
        EXPECT_NE(k, Tok::Indent);
    }
    EXPECT_EQ(newlines, 1);
}

TEST(Lexer, OperatorsTwoChar)
{
    auto toks = tokenize("== != <= >= << >> ** // += -= *= //= %=\n");
    std::vector<Tok> expect = {
        Tok::Eq, Tok::Ne, Tok::Le, Tok::Ge, Tok::LShift,
        Tok::RShift, Tok::DoubleStar, Tok::DoubleSlash,
        Tok::PlusAssign, Tok::MinusAssign, Tok::StarAssign,
        Tok::DoubleSlashAssign, Tok::PercentAssign,
    };
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(toks[i].kind, expect[i]) << "index " << i;
}

TEST(Lexer, MissingFinalNewlineHandled)
{
    auto ks = kinds("x = 1");
    EXPECT_EQ(ks.back(), Tok::EndOfFile);
    EXPECT_EQ(ks[ks.size() - 2], Tok::Newline);
}

TEST(Lexer, LineAndColumnTracking)
{
    auto toks = tokenize("a = 1\nbb = 2\n");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[0].col, 1);
    // 'bb' on line 2.
    EXPECT_EQ(toks[4].line, 2);
    EXPECT_EQ(toks[4].text, "bb");
}

TEST(Lexer, Errors)
{
    EXPECT_THROW(tokenize("x = 'unterminated\n"), SyntaxError);
    EXPECT_THROW(tokenize("x = $\n"), SyntaxError);
    EXPECT_THROW(tokenize("x = 1 !\n"), SyntaxError);
    EXPECT_THROW(tokenize("if a:\n    x = 1\n  y = 2\n"),
                 SyntaxError);  // bad dedent
}

TEST(Lexer, AdjacentStringsKeptSeparateTokens)
{
    auto toks = tokenize("'a' 'b'\n");
    EXPECT_EQ(toks[0].kind, Tok::StrLit);
    EXPECT_EQ(toks[1].kind, Tok::StrLit);
}

TEST(Lexer, ExplicitLineContinuation)
{
    auto ks = kinds("x = 1 + \\\n    2\n");
    int newlines = 0;
    for (auto k : ks)
        if (k == Tok::Newline)
            ++newlines;
    EXPECT_EQ(newlines, 1);
}

} // namespace
} // namespace vm
} // namespace rigor
