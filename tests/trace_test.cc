/**
 * @file
 * Trace-emitter tests: event structure, modelled-clock timestamps,
 * span nesting/unwinding and Chrome trace-event well-formedness
 * (every document must parse back with support/json).
 */

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "support/trace.hh"

namespace rigor {
namespace {

TEST(Trace, SpansUseModelledClock)
{
    TraceEmitter tr;
    tr.beginSpan("outer", "test");
    tr.advanceMs(1.5);
    tr.beginSpan("inner", "test");
    tr.advanceMs(0.5);
    tr.endSpan();
    tr.endSpan();

    Json doc = tr.toJson();
    const Json &evs = doc.at("traceEvents");
    ASSERT_EQ(evs.size(), 4u);
    EXPECT_EQ(evs.at(0).at("ph").asString(), "B");
    EXPECT_EQ(evs.at(0).at("name").asString(), "outer");
    EXPECT_DOUBLE_EQ(evs.at(0).at("ts").asDouble(), 0.0);
    EXPECT_EQ(evs.at(1).at("name").asString(), "inner");
    EXPECT_DOUBLE_EQ(evs.at(1).at("ts").asDouble(), 1500.0);
    // E events close innermost-first at the clock's position.
    EXPECT_EQ(evs.at(2).at("ph").asString(), "E");
    EXPECT_EQ(evs.at(2).at("name").asString(), "inner");
    EXPECT_DOUBLE_EQ(evs.at(2).at("ts").asDouble(), 2000.0);
    EXPECT_EQ(evs.at(3).at("name").asString(), "outer");
}

TEST(Trace, InstantEventsCarryArgs)
{
    TraceEmitter tr;
    tr.advanceMs(2.0);
    Json args = Json::object();
    args.set("code_id", 7);
    tr.instant("jit_compile", "vm", std::move(args));

    Json doc = tr.toJson();
    const Json &e = doc.at("traceEvents").at(0);
    EXPECT_EQ(e.at("ph").asString(), "i");
    EXPECT_EQ(e.at("s").asString(), "t");
    EXPECT_EQ(e.at("cat").asString(), "vm");
    EXPECT_DOUBLE_EQ(e.at("ts").asDouble(), 2000.0);
    EXPECT_EQ(e.at("args").at("code_id").asInt(), 7);
}

TEST(Trace, EndSpanWithoutOpenPanics)
{
    TraceEmitter tr;
    EXPECT_THROW(tr.endSpan(), PanicError);
}

TEST(Trace, EndSpansToUnwindsToDepth)
{
    TraceEmitter tr;
    tr.beginSpan("a", "t");
    size_t depth = tr.openSpans();
    tr.beginSpan("b", "t");
    tr.beginSpan("c", "t");
    EXPECT_EQ(tr.openSpans(), 3u);
    tr.endSpansTo(depth);
    EXPECT_EQ(tr.openSpans(), 1u);
    tr.endSpansTo(0);
    EXPECT_EQ(tr.openSpans(), 0u);
    // a, b, c opened; c, b, a closed.
    EXPECT_EQ(tr.eventCount(), 6u);
}

TEST(Trace, DocumentParsesBack)
{
    TraceEmitter tr;
    tr.beginSpan("span \"quoted\"", "harness");
    tr.instant("warn", "log");
    tr.advanceMs(0.25);
    tr.endSpan();

    Json doc = Json::parse(tr.toJson().dump(1));
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
    ASSERT_EQ(doc.at("traceEvents").size(), 3u);
    EXPECT_EQ(doc.at("traceEvents").at(0).at("name").asString(),
              "span \"quoted\"");
}

} // namespace
} // namespace rigor
