#!/usr/bin/env bash
# Differential-profiling integration test for the rigorbench CLI.
#
# Archives a JIT-active baseline and a de-JIT-ed candidate (the same
# true-positive regression archive_gate_test.sh uses), then checks the
# observability layer built on top:
#   - `archive list` reports the profile column and entry sizes;
#   - `explain` attributes the regression, leads with the expected
#     component (branch: interpreter-dispatch mispredicts dominate a
#     de-JIT), reports the JIT-compile evidence, and keeps the
#     explicit unattributed remainder;
#   - explain --json is byte-identical across repeats and across the
#     --jobs value of the *source runs*;
#   - `gate --explain` appends the attribution for the failing pair
#     and still exits 4;
#   - a legacy entry without profiles degrades loudly, not silently.
#
# Usage: explain_cli_test.sh /path/to/rigorbench
set -u

BIN=${1:?usage: $0 /path/to/rigorbench}
WORK=$(mktemp -d /tmp/rigor_explain_XXXXXX)
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

ARCH="$WORK/archive"
# Enough iterations for the JIT to dominate the steady state, so
# disabling it is a large, attributable regression.
RUN_FLAGS=(run richards --tier adaptive --invocations 4
           --iterations 30 --seed 0xfeed --quiet)

# --- archive baseline (at --jobs 1 and 4) and de-JIT-ed candidate ----
"$BIN" "${RUN_FLAGS[@]}" --jobs 1 --archive "$ARCH" --label base \
    >/dev/null 2>&1 || fail "archiving baseline failed (rc=$?)"
"$BIN" "${RUN_FLAGS[@]}" --jobs 4 --archive "$ARCH" --label base4 \
    >/dev/null 2>&1 || fail "archiving jobs-4 baseline failed (rc=$?)"
"$BIN" "${RUN_FLAGS[@]}" --jobs 1 --jit-threshold 100000000 \
    --archive "$ARCH" --label slow >/dev/null 2>&1 ||
    fail "archiving candidate failed (rc=$?)"

# --- archive list carries the profile and size columns ---------------
"$BIN" archive list --archive "$ARCH" >"$WORK/list.txt" 2>&1 ||
    fail "archive list exited $? (want 0)"
grep -q "profile" "$WORK/list.txt" ||
    fail "archive list has no profile column"
grep -q "bytes" "$WORK/list.txt" ||
    fail "archive list has no bytes column"
grep -q "yes" "$WORK/list.txt" ||
    fail "archive list does not mark profiled entries"

# --- explain attributes the de-JIT regression ------------------------
"$BIN" explain base slow --archive "$ARCH" >"$WORK/ex.md" 2>&1 ||
    fail "explain exited $? (want 0)"
grep -q "richards / adaptive" "$WORK/ex.md" ||
    fail "explain lacks the pair section"
grep -q "% slower" "$WORK/ex.md" ||
    fail "explain does not report a slowdown"
# A de-JIT-ed run pays for every bytecode through interpreter
# dispatch: the mispredict (branch) component must lead the ranking,
# i.e. be the first row of the component table.
top=$(grep -A2 "^| component |" "$WORK/ex.md" | tail -1)
echo "$top" | grep -q "| branch |" ||
    fail "top component is not branch: $top"
grep -q "unattributed remainder" "$WORK/ex.md" ||
    fail "explain hides the unattributed remainder"
grep -q "jit compiles" "$WORK/ex.md" ||
    fail "explain lacks the jit-compile evidence"
grep -Eq "jit compiles [1-9][0-9,]* → 0" "$WORK/ex.md" ||
    fail "evidence does not show the JIT turning off"

# --- explain --json: byte-identical across repeats -------------------
"$BIN" explain base slow --archive "$ARCH" --json "$WORK/e1.json" \
    >/dev/null 2>&1 || fail "explain --json exited $? (want 0)"
"$BIN" explain base slow --archive "$ARCH" --json "$WORK/e2.json" \
    >/dev/null 2>&1 || fail "repeated explain --json exited $?"
cmp -s "$WORK/e1.json" "$WORK/e2.json" ||
    fail "explain JSON differs across repeats"
grep -q '"schema": "rigorbench-explain"' "$WORK/e1.json" ||
    fail "explain JSON carries no schema field"

# --- ... and across the --jobs value of the source runs --------------
"$BIN" explain base4 slow --archive "$ARCH" --json "$WORK/e4.json" \
    >/dev/null 2>&1 || fail "jobs-4 explain --json exited $?"
# Entry ids/refs legitimately differ; every attribution number must
# not. Compare the reports with refs and ids masked out.
mask() {
    sed -e 's/"ref": "[^"]*"/"ref": "X"/' \
        -e 's/"id": [0-9]*/"id": 0/' "$1"
}
mask "$WORK/e1.json" >"$WORK/e1.masked"
mask "$WORK/e4.json" >"$WORK/e4.masked"
cmp -s "$WORK/e1.masked" "$WORK/e4.masked" ||
    fail "explain attribution differs between jobs-1 and jobs-4 runs"

# --- gate --explain appends the attribution on failure ---------------
"$BIN" gate base slow --archive "$ARCH" --explain \
    >"$WORK/gate.txt" 2>&1
rc=$?
[ "$rc" -eq 4 ] || fail "gate --explain exited $rc (want 4)"
grep -q "FAIL" "$WORK/gate.txt" || fail "failing gate said no FAIL"
grep -q "worst: richards/adaptive" "$WORK/gate.txt" ||
    fail "gate summary does not lead with the worst pair"
grep -q "richards / adaptive" "$WORK/gate.txt" ||
    fail "gate --explain appended no attribution section"
grep -q "unattributed remainder" "$WORK/gate.txt" ||
    fail "gate --explain attribution lacks the remainder row"

# --- a passing gate stays silent about attribution -------------------
"$BIN" gate base base4 --archive "$ARCH" --explain \
    >"$WORK/gate_ok.txt" 2>&1
rc=$?
[ "$rc" -eq 0 ] || fail "same-config gate exited $rc (want 0)"
grep -q "unattributed" "$WORK/gate_ok.txt" &&
    fail "passing gate printed attribution anyway"

# --- legacy entry without profiles degrades loudly -------------------
# Strip the profiles from the candidate entry in place, turning it
# into a v1-era document (the archive accepts versions 1..2). The
# surgery is purely textual — number tokens are never re-serialized,
# so the payload CRC can be recomputed without matching the C++
# float formatting.
python3 - "$ARCH" <<'EOF' || fail "could not write legacy entry"
import glob, sys, zlib

path = sorted(glob.glob(sys.argv[1] + "/entry-*.json"))[-1]
text = open(path).read()

def match_end(s, i):
    """Index of the bracket closing the value starting at s[i]."""
    depth, instr, esc = 0, False, False
    for j in range(i, len(s)):
        c = s[j]
        if instr:
            if esc: esc = False
            elif c == "\\": esc = True
            elif c == '"': instr = False
        elif c == '"':
            instr = True
        elif c in "{[":
            depth += 1
        elif c in "}]":
            depth -= 1
            if depth == 0:
                return j
    raise ValueError("unbalanced")

# Extract the payload subtree verbatim.
i = text.index('"payload": ') + len('"payload": ')
payload = text[i:match_end(text, i) + 1]

# Drop the profiles member (plus the comma before it; "profiles"
# never sorts first in the payload object).
i = payload.index('"profiles": ')
end = match_end(payload, i + len('"profiles": '))
j = i - 1
while payload[j] in " \n\t":
    j -= 1
assert payload[j] == ","
payload = payload[:j] + payload[end + 1:]
assert payload.count('"version": 2') == 1
payload = payload.replace('"version": 2', '"version": 1')

# Compact exactly like Json::dump(-1): strip whitespace outside
# strings (this also turns ': ' into ':').
out, instr, esc = [], False, False
for c in payload:
    if instr:
        out.append(c)
        if esc: esc = False
        elif c == "\\": esc = True
        elif c == '"': instr = False
    elif c not in " \n\t":
        out.append(c)
        if c == '"':
            instr = True
compact = "".join(out)

crc = "%08x" % (zlib.crc32(compact.encode()) & 0xFFFFFFFF)
open(path, "w").write(
    '{"crc32":"%s","format":"rigorbench-state","payload":%s,'
    '"version":1}' % (crc, compact))
EOF
"$BIN" explain base slow --archive "$ARCH" >"$WORK/legacy.md" 2>&1 ||
    fail "explain on a legacy entry exited $? (want 0)"
grep -q "NO PROFILE CAPTURED" "$WORK/legacy.md" ||
    fail "legacy entry did not degrade loudly"
grep -q "% slower" "$WORK/legacy.md" ||
    fail "legacy degradation dropped the measured change"

echo "explain_cli_test: OK"
