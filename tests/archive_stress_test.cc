/**
 * @file
 * Concurrent-archive stress test: several forked appender processes
 * race several forked reader processes against one archive directory.
 * The advisory lock must serialize the appends (ids dense, none lost
 * or duplicated), while readers — scans, HEAD resolution, full entry
 * loads — never block on the lock, never observe a torn entry, and
 * never quarantine anything merely because a writer was mid-append.
 * This is the multi-tenant guarantee the serve daemon leans on when
 * it answers `query` ops while worker threads append results
 * (docs/METHODOLOGY.md §17).
 */

#include <sys/types.h>
#include <sys/wait.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "archive/archive.hh"
#include "archive/fsck.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace rigor {
namespace archive {
namespace {

constexpr int kAppenders = 4;
constexpr int kAppendsEach = 6;
constexpr int kReaders = 3;

/** Fresh scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    ScratchDir()
    {
        char tmpl[] = "/tmp/rigor_stress_XXXXXX";
        const char *d = ::mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        dir_ = d ? d : ".";
    }

    ~ScratchDir()
    {
        std::string cmd = "rm -rf '" + dir_ + "'";
        int rc = std::system(cmd.c_str());
        (void)rc;
    }

    const std::string &dir() const { return dir_; }

    std::string path(const std::string &name) const
    {
        return dir_ + "/" + name;
    }

  private:
    std::string dir_;
};

harness::RunResult
makeRun(const std::string &workload)
{
    harness::RunResult run;
    run.workload = workload;
    run.tier = vm::Tier::Interp;
    run.size = 10;
    harness::InvocationResult ir;
    ir.invocationSeed = 7;
    harness::IterationSample s;
    s.timeMs = 1.25;
    ir.samples.push_back(s);
    run.invocations.push_back(ir);
    run.invocationsAttempted = 1;
    return run;
}

/**
 * Run `fn` in a forked child. The child _exit()s with 0 on clean
 * completion and a nonzero code on any thrown exception, so a failure
 * inside a child surfaces as a waitpid status in the parent (gtest
 * assertions do not propagate across fork).
 */
template <typename Fn>
::pid_t
spawn(Fn fn)
{
    ::pid_t pid = ::fork();
    EXPECT_GE(pid, 0);
    if (pid == 0) {
        // Children must not warn onto the test's stderr: a reader
        // racing a writer is *expected* to retry, not to narrate.
        setQuiet(true);
        int rc = 0;
        try {
            rc = fn();
        } catch (...) {
            rc = 9;
        }
        ::_exit(rc);
    }
    return pid;
}

int
reap(::pid_t pid)
{
    int status = 0;
    ::waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/** Appender child: `kAppendsEach` labeled appends, ids recorded. */
int
appenderBody(const std::string &dir, int who)
{
    RunArchive ar(dir);
    int previous = 0;
    for (int i = 0; i < kAppendsEach; ++i) {
        int id = ar.append(Json::object(),
                           "w" + std::to_string(who), "run",
                           {makeRun("wl" + std::to_string(i))});
        // Ids grow monotonically even from this single process's
        // point of view; going backwards would mean a lost update.
        if (id <= previous)
            return 4;
        previous = id;
    }
    return 0;
}

/**
 * Reader child: scan/resolve/load in a loop while writers are busy.
 * Every observation must be internally consistent — strictly
 * ascending unique ids, loadable newest entry — and nothing may be
 * quarantined, because concurrent appends leave only complete,
 * checksummed entries behind.
 */
int
readerBody(const std::string &dir)
{
    RunArchive ar(dir);
    for (int round = 0; round < 25; ++round) {
        ScanResult scan = ar.scan();
        if (!scan.quarantined.empty())
            return 5;
        int previous = 0;
        for (const EntrySummary &e : scan.entries) {
            if (e.id <= previous)
                return 6;
            previous = e.id;
        }
        if (!scan.entries.empty()) {
            // A full load of the newest entry: a torn write would
            // fail its checksum and throw (mapped to exit 9).
            Entry head = ar.resolve("HEAD");
            if (head.runs.empty())
                return 7;
            if (head.summary.id != scan.entries.back().id &&
                head.summary.id < scan.entries.back().id)
                return 8;
        }
    }
    return 0;
}

TEST(ArchiveStress, ForkedAppendersAndReadersStayConsistent)
{
    ScratchDir scratch;
    std::string dir = scratch.path("archive");
    {
        // Seed one entry (and the directory) so readers start with
        // something to resolve and neither child races mkdir.
        RunArchive ar(dir);
        ASSERT_EQ(ar.append(Json::object(), "seed", "run",
                            {makeRun("seed")}),
                  1);
    }

    std::vector<::pid_t> children;
    for (int w = 0; w < kAppenders; ++w)
        children.push_back(
            spawn([&dir, w] { return appenderBody(dir, w); }));
    for (int r = 0; r < kReaders; ++r)
        children.push_back(spawn([&dir] { return readerBody(dir); }));
    for (::pid_t pid : children)
        EXPECT_EQ(reap(pid), 0);

    // Final accounting: every append landed exactly once, ids dense
    // from 1, per-writer counts intact, and fsck agrees the
    // directory is clean.
    RunArchive ar(dir);
    ScanResult scan = ar.scan();
    const size_t expected = 1 + kAppenders * kAppendsEach;
    ASSERT_EQ(scan.entries.size(), expected);
    EXPECT_EQ(scan.quarantinedPresent, 0);
    std::set<int> ids;
    std::vector<int> perWriter(kAppenders, 0);
    for (size_t i = 0; i < scan.entries.size(); ++i) {
        const EntrySummary &e = scan.entries[i];
        EXPECT_EQ(e.id, static_cast<int>(i) + 1);
        EXPECT_TRUE(ids.insert(e.id).second);
        for (int w = 0; w < kAppenders; ++w)
            perWriter[w] += e.label == "w" + std::to_string(w);
    }
    for (int w = 0; w < kAppenders; ++w)
        EXPECT_EQ(perWriter[w], kAppendsEach);
    EXPECT_TRUE(fsckArchive(dir, false).clean());
}

} // namespace
} // namespace archive
} // namespace rigor
