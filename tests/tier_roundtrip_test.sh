#!/usr/bin/env bash
# Three-way tier integration test for the rigorbench CLI.
#
# The threaded tier must be a first-class citizen of every artifact
# path:
#   - `run --tier threaded` produces --json/--csv artifacts that are
#     byte-identical across --jobs 1 and --jobs 4, like the other
#     tiers;
#   - a suite run measures all three tiers, reports both speedup
#     columns, and its --resume state is byte-identical across job
#     counts;
#   - an archived suite supports cross-tier compare
#     (--base-tier/--cand-tier) with byte-identical --json output
#     across repeats;
#   - unknown tier strings are rejected loudly everywhere: on the
#     command line (exit 2, named value), in a hand-edited archive
#     entry (exit 2), and in a hand-edited resume checkpoint (the
#     workload degrades with the unknown name in the message — never
#     a silent fallback to an existing tier).
#
# Usage: tier_roundtrip_test.sh /path/to/rigorbench
set -u

BIN=${1:?usage: $0 /path/to/rigorbench}
WORK=$(mktemp -d /tmp/rigor_tier_XXXXXX)
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

# Textual state-file surgery shared by the corruption scenarios:
# extract the payload subtree, rewrite tier strings in a scoped
# region, recompact exactly like Json::dump(-1) and refresh the CRC.
# Number tokens are never re-serialized, so the C++ float formatting
# does not need to be matched. Args: <file> <scope-key-or-"">.
retier() {
    python3 - "$1" "$2" <<'EOF'
import sys, zlib

path, scope = sys.argv[1], sys.argv[2]
text = open(path).read()

def match_end(s, i):
    """Index of the bracket closing the value starting at s[i]."""
    depth, instr, esc = 0, False, False
    for j in range(i, len(s)):
        c = s[j]
        if instr:
            if esc: esc = False
            elif c == "\\": esc = True
            elif c == '"': instr = False
        elif c == '"':
            instr = True
        elif c in "{[":
            depth += 1
        elif c in "}]":
            depth -= 1
            if depth == 0:
                return j
    raise ValueError("unbalanced")

i = text.index('"payload": ') + len('"payload": ')
payload = text[i:match_end(text, i) + 1]

# Rewrite tier strings, only inside the scope subtree when one is
# given (e.g. the trace snapshot legitimately mentions tiers
# elsewhere).
if scope:
    key = '"%s": ' % scope
    i = payload.index(key) + len(key)
    jend = match_end(payload, i) + 1
    region = payload[i:jend]
else:
    i, jend = 0, len(payload)
    region = payload
n = 0
for t in ("interp", "adaptive", "threaded"):
    old = '"tier": "%s"' % t
    if old in region:
        n += region.count(old)
        region = region.replace(old, '"tier": "bogus"')
assert n > 0, "no tier string found to rewrite"
payload = payload[:i] + region + payload[jend:]

# Compact exactly like Json::dump(-1): strip whitespace outside
# strings (this also turns ': ' into ':').
out, instr, esc = [], False, False
for c in payload:
    if instr:
        out.append(c)
        if esc: esc = False
        elif c == "\\": esc = True
        elif c == '"': instr = False
    elif c not in " \n\t":
        out.append(c)
        if c == '"':
            instr = True
compact = "".join(out)

crc = "%08x" % (zlib.crc32(compact.encode()) & 0xFFFFFFFF)
open(path, "w").write(
    '{"crc32":"%s","format":"rigorbench-state","payload":%s,'
    '"version":1}' % (crc, compact))
EOF
}

# --- unknown --tier is a runtime failure naming the value ------------
"$BIN" run sieve --tier bogus >"$WORK/bogus.out" 2>"$WORK/bogus.err"
rc=$?
[ "$rc" -eq 2 ] || fail "--tier bogus exited $rc (want 2)"
grep -q "unknown tier 'bogus' (expected interp|adaptive|threaded)" \
    "$WORK/bogus.err" ||
    fail "--tier bogus did not name the offending value"
# ... and the same validation guards the cross-tier pairing flags.
"$BIN" compare a b --base-tier warp --cand-tier interp \
    >/dev/null 2>"$WORK/warp.err"
rc=$?
[ "$rc" -eq 2 ] || fail "--base-tier warp exited $rc (want 2)"
grep -q "unknown tier 'warp'" "$WORK/warp.err" ||
    fail "--base-tier warp did not name the offending value"
# One pairing flag without the other is a usage error (exit 1).
"$BIN" compare a b --base-tier interp >/dev/null 2>&1
rc=$?
[ "$rc" -eq 1 ] || fail "lone --base-tier exited $rc (want 1)"

# --- per-tier run artifacts are --jobs invariant ---------------------
for tier in interp adaptive threaded; do
    for jobs in 1 4; do
        "$BIN" run richards --tier "$tier" --invocations 4 \
            --iterations 10 --seed 0xfeed --jobs "$jobs" --quiet \
            --json "$WORK/$tier-$jobs.json" \
            --csv "$WORK/$tier-$jobs.csv" >/dev/null 2>&1 ||
            fail "run --tier $tier --jobs $jobs failed (rc=$?)"
    done
    cmp -s "$WORK/$tier-1.json" "$WORK/$tier-4.json" ||
        fail "$tier run JSON differs between jobs 1 and 4"
    cmp -s "$WORK/$tier-1.csv" "$WORK/$tier-4.csv" ||
        fail "$tier run CSV differs between jobs 1 and 4"
    grep -q "\"tier\": \"$tier\"" "$WORK/$tier-1.json" ||
        fail "$tier run JSON does not record its tier"
done

# --- suite: three tiers, two speedup columns, jobs-proof state -------
SUITE_FLAGS=(suite --invocations 2 --iterations 4 --seed 0xfeed
             --quiet)
for jobs in 1 4; do
    mkdir -p "$WORK/suite$jobs"
    "$BIN" "${SUITE_FLAGS[@]}" --jobs "$jobs" \
        --resume "$WORK/suite$jobs/state.json" \
        >"$WORK/suite$jobs/stdout.txt" 2>&1 ||
        fail "suite --jobs $jobs failed (rc=$?)"
done
cmp -s "$WORK/suite1/state.json" "$WORK/suite4/state.json" ||
    fail "suite resume state differs between jobs 1 and 4"
grep -q "threaded ms" "$WORK/suite1/stdout.txt" ||
    fail "suite table has no threaded column"
grep -q "geomean speedup (adaptive over interp)" \
    "$WORK/suite1/stdout.txt" ||
    fail "suite lacks the adaptive geomean line"
grep -q "geomean speedup (threaded over interp)" \
    "$WORK/suite1/stdout.txt" ||
    fail "suite lacks the threaded geomean line"

# --- archived suite: cross-tier compare ------------------------------
ARCH="$WORK/archive"
"$BIN" "${SUITE_FLAGS[@]}" --jobs 1 --archive "$ARCH" --label full \
    >/dev/null 2>&1 || fail "archiving suite failed (rc=$?)"
"$BIN" compare HEAD HEAD --archive "$ARCH" \
    --base-tier interp --cand-tier threaded \
    --json "$WORK/x1.json" >"$WORK/x.md" 2>&1 ||
    fail "cross-tier compare exited $? (want 0)"
grep -q "Cross-tier pairing" "$WORK/x.md" ||
    fail "compare does not surface the cross-tier pairing"
grep -q "interp->threaded" "$WORK/x.md" ||
    fail "compare pairs are not keyed base->cand"
grep -q '"baseline_tier": "interp"' "$WORK/x1.json" ||
    fail "compare JSON does not record the baseline tier"
"$BIN" compare HEAD HEAD --archive "$ARCH" \
    --base-tier interp --cand-tier threaded \
    --json "$WORK/x2.json" >/dev/null 2>&1 ||
    fail "repeated cross-tier compare exited $?"
cmp -s "$WORK/x1.json" "$WORK/x2.json" ||
    fail "cross-tier compare JSON differs across repeats"
# Same-tier reports must not grow the new fields (byte-compatible
# with pre-threaded consumers).
"$BIN" compare HEAD HEAD --archive "$ARCH" --json "$WORK/same.json" \
    >/dev/null 2>&1 || fail "same-entry compare exited $?"
grep -q "baseline_tier" "$WORK/same.json" &&
    fail "default compare JSON leaks the cross-tier fields"

# --- hand-edited archive entry: unknown tier rejected loudly ---------
# Rewrite the archived runs' tier strings to a name no tier has and
# require the loader to refuse by name instead of misfiling the runs
# under an existing tier.
entry=$(ls "$ARCH"/entry-*.json | tail -1)
retier "$entry" "" || fail "could not edit archive entry"
"$BIN" compare HEAD HEAD --archive "$ARCH" \
    --base-tier interp --cand-tier threaded \
    >"$WORK/warped.out" 2>"$WORK/warped.err"
rc=$?
[ "$rc" -eq 2 ] || fail "edited archive entry exited $rc (want 2)"
grep -q "unknown tier 'bogus'" "$WORK/warped.err" ||
    fail "edited archive entry was not rejected by name"

# --- hand-edited resume checkpoint: unknown tier degrades loudly -----
# Interrupt a suite so the checkpoint holds a partial run (which
# embeds its tier string), rewrite that tier, and resume: the
# workload must fail with the unknown name in the message, never
# silently remap to an existing tier. The nap before the SIGTERM
# shrinks until the signal lands mid-suite (sanitizer builds run
# much slower than release builds).
CKPT_FLAGS=("${SUITE_FLAGS[@]}" --checkpoint-every 2)
ref_start=$SECONDS
mkdir -p "$WORK/ref"
"$BIN" "${CKPT_FLAGS[@]}" --jobs 1 --resume "$WORK/ref/state.json" \
    >/dev/null 2>&1 || fail "checkpoint reference run failed (rc=$?)"
ref_dur=$((SECONDS - ref_start))
got_checkpoint=0
for nap in $(awk -v d="$ref_dur" 'BEGIN {
        if (d < 1) d = 1
        printf "%.2f %.2f %.2f 0.1", d / 3, d / 6, d / 15 }'); do
    rm -rf "$WORK/interrupted"
    mkdir -p "$WORK/interrupted"
    "$BIN" "${CKPT_FLAGS[@]}" --jobs 1 \
        --resume "$WORK/interrupted/state.json" >/dev/null 2>&1 &
    pid=$!
    sleep "$nap"
    kill -TERM "$pid" 2>/dev/null
    wait "$pid"
    rc=$?
    if [ "$rc" -eq 3 ] &&
        grep -q '"in_progress"' "$WORK/interrupted/state.json"; then
        got_checkpoint=1
        break
    fi
    [ "$rc" -eq 3 ] || [ "$rc" -eq 0 ] ||
        fail "interrupted suite exited $rc (want 3, or 0 to retry)"
done
if [ "$got_checkpoint" -eq 1 ]; then
    retier "$WORK/interrupted/state.json" "in_progress" ||
        fail "could not edit resume checkpoint"
    rm -f "$WORK/interrupted/state.json.bak"
    "$BIN" "${CKPT_FLAGS[@]}" --jobs 1 \
        --resume "$WORK/interrupted/state.json" \
        >"$WORK/interrupted/stdout.txt" \
        2>"$WORK/interrupted/stderr.txt"
    grep -q "unknown tier 'bogus'" "$WORK/interrupted/stderr.txt" ||
        fail "edited resume checkpoint was not rejected by name"
else
    # The suite finished before any signal landed (very fast build,
    # very slow shell): the archive-entry surgery above already
    # proved unknown-tier rejection on the deserialization path.
    echo "note: SIGTERM never landed mid-suite; skipping the" \
        "resume-checkpoint surgery"
fi

echo "tier_roundtrip_test: OK"
