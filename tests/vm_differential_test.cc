/**
 * @file
 * Differential (fuzz) tests: random MiniPy programs are generated and
 * simultaneously evaluated by a C++ oracle; the VM must agree on
 * every run, on every tier. Covers integer arithmetic expression
 * trees and random list-operation sequences against std::vector.
 */

#include <map>

#include <gtest/gtest.h>

#include "support/rng.hh"
#include "vm/compiler.hh"
#include "vm/interp.hh"

namespace rigor {
namespace vm {
namespace {

/** Generates random integer expressions with a parallel evaluator. */
class ExprFuzzer
{
  public:
    explicit ExprFuzzer(uint64_t seed) : rng(seed) {}

    /**
     * Produce a random expression over variables a..d. Writes the
     * source into `src` and returns the oracle's value given the
     * variable bindings. Division/modulo by zero is avoided by
     * construction (divisors are non-zero literals).
     */
    int64_t
    generate(std::string &src, const int64_t vars[4], int depth)
    {
        if (depth <= 0 || rng.nextBernoulli(0.3)) {
            if (rng.nextBernoulli(0.5)) {
                int v = static_cast<int>(rng.nextBounded(4));
                src += static_cast<char>('a' + v);
                return vars[v];
            }
            int64_t lit = rng.nextRange(-50, 50);
            src += "(" + std::to_string(lit) + ")";
            return lit;
        }
        // Binary operator.
        int op = static_cast<int>(rng.nextBounded(6));
        src += "(";
        int64_t lhs = generate(src, vars, depth - 1);
        int64_t rhs = 0;
        switch (op) {
          case 0:
            src += " + ";
            rhs = generate(src, vars, depth - 1);
            src += ")";
            return wrapAdd(lhs, rhs);
          case 1:
            src += " - ";
            rhs = generate(src, vars, depth - 1);
            src += ")";
            return wrapSub(lhs, rhs);
          case 2:
            src += " * ";
            rhs = generate(src, vars, depth - 1);
            src += ")";
            return wrapMul(lhs, rhs);
          case 3: {  // floor division by a non-zero literal
            int64_t d = rng.nextRange(1, 9) *
                (rng.nextBernoulli(0.5) ? 1 : -1);
            src += " // (" + std::to_string(d) + "))";
            return pyFloorDiv(lhs, d);
          }
          case 4: {  // modulo by a non-zero literal
            int64_t d = rng.nextRange(1, 9) *
                (rng.nextBernoulli(0.5) ? 1 : -1);
            src += " % (" + std::to_string(d) + "))";
            return pyMod(lhs, d);
          }
          default: {  // bitwise and/or/xor
            src += op % 3 == 0 ? " & " : (op % 3 == 1 ? " | "
                                                      : " ^ ");
            rhs = generate(src, vars, depth - 1);
            src += ")";
            if (op % 3 == 0)
                return lhs & rhs;
            if (op % 3 == 1)
                return lhs | rhs;
            return lhs ^ rhs;
          }
        }
    }

    Rng rng;

  private:
    static int64_t
    wrapAdd(int64_t a, int64_t b)
    {
        return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                    static_cast<uint64_t>(b));
    }
    static int64_t
    wrapSub(int64_t a, int64_t b)
    {
        return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                    static_cast<uint64_t>(b));
    }
    static int64_t
    wrapMul(int64_t a, int64_t b)
    {
        return static_cast<int64_t>(static_cast<uint64_t>(a) *
                                    static_cast<uint64_t>(b));
    }
    static int64_t
    pyFloorDiv(int64_t a, int64_t b)
    {
        int64_t q = a / b;
        if (a % b != 0 && ((a < 0) != (b < 0)))
            --q;
        return q;
    }
    static int64_t
    pyMod(int64_t a, int64_t b)
    {
        int64_t r = a % b;
        if (r != 0 && ((r < 0) != (b < 0)))
            r += b;
        return r;
    }
};

class ExprDifferential : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ExprDifferential, RandomIntExpressionsMatchOracle)
{
    ExprFuzzer fuzz(GetParam());
    for (int trial = 0; trial < 25; ++trial) {
        int64_t vars[4];
        for (auto &v : vars)
            v = fuzz.rng.nextRange(-100, 100);
        std::string expr;
        int64_t expected = fuzz.generate(expr, vars, 4);

        std::string src = "def run(a, b, c, d):\n    return " +
            expr + "\n";
        Program prog = compileSource(src);
        for (Tier tier :
             {Tier::Interp, Tier::Adaptive, Tier::Threaded}) {
            InterpConfig cfg;
            cfg.tier = tier;
            cfg.jitThreshold = 1;
            Interp interp(prog, cfg);
            interp.runModule();
            Value r = interp.callGlobal(
                "run",
                {Value::makeInt(vars[0]), Value::makeInt(vars[1]),
                 Value::makeInt(vars[2]), Value::makeInt(vars[3])});
            ASSERT_TRUE(r.isInt()) << src;
            EXPECT_EQ(r.asInt(), expected)
                << src << " tier=" << tierName(tier);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprDifferential,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class ListDifferential : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ListDifferential, RandomListOpsMatchVectorOracle)
{
    Rng rng(GetParam() * 7919);
    // Build a random op sequence against both a MiniPy list and a
    // std::vector oracle, then compare the end state element-wise.
    std::vector<int64_t> oracle;
    std::string body;
    body += "def run(n):\n    l = []\n";
    for (int step = 0; step < 60; ++step) {
        int op = static_cast<int>(rng.nextBounded(6));
        if (oracle.empty())
            op = 0;  // must append first
        switch (op) {
          case 0: {
            int64_t v = rng.nextRange(-99, 99);
            body += "    l.append(" + std::to_string(v) + ")\n";
            oracle.push_back(v);
            break;
          }
          case 1: {
            body += "    l.pop()\n";
            oracle.pop_back();
            break;
          }
          case 2: {
            size_t i = rng.nextBounded(oracle.size());
            int64_t v = rng.nextRange(-99, 99);
            body += "    l[" + std::to_string(i) + "] = " +
                std::to_string(v) + "\n";
            oracle[i] = v;
            break;
          }
          case 3: {
            size_t i = rng.nextBounded(oracle.size());
            int64_t v = rng.nextRange(1, 9);
            body += "    l[" + std::to_string(i) + "] += " +
                std::to_string(v) + "\n";
            oracle[i] += v;
            break;
          }
          case 4: {
            body += "    l.reverse()\n";
            std::reverse(oracle.begin(), oracle.end());
            break;
          }
          case 5: {
            size_t i = rng.nextBounded(oracle.size() + 1);
            int64_t v = rng.nextRange(-99, 99);
            body += "    l.insert(" + std::to_string(i) + ", " +
                std::to_string(v) + ")\n";
            oracle.insert(oracle.begin() +
                              static_cast<ptrdiff_t>(i),
                          v);
            break;
          }
        }
    }
    body += "    return l\n";

    Program prog = compileSource(body);
    Interp interp(prog, {});
    interp.runModule();
    Value result = interp.callGlobal("run", {Value::makeInt(0)});
    ASSERT_TRUE(result.isObjKind(ObjKind::List));
    auto &items = static_cast<ListObj *>(result.asObj())->items;
    ASSERT_EQ(items.size(), oracle.size());
    for (size_t i = 0; i < oracle.size(); ++i) {
        ASSERT_TRUE(items[i].isInt());
        EXPECT_EQ(items[i].asInt(), oracle[i]) << "index " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListDifferential,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

class DictDifferential : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DictDifferential, RandomDictOpsMatchMapOracle)
{
    Rng rng(GetParam() * 104729);
    std::map<int64_t, int64_t> oracle;
    std::string body = "def run(n):\n    d = {}\n";
    for (int step = 0; step < 80; ++step) {
        int64_t key = rng.nextRange(0, 25);
        int op = static_cast<int>(rng.nextBounded(3));
        if (op == 0 || oracle.find(key) == oracle.end()) {
            int64_t v = rng.nextRange(-99, 99);
            body += "    d[" + std::to_string(key) + "] = " +
                std::to_string(v) + "\n";
            oracle[key] = v;
        } else if (op == 1) {
            body += "    del d[" + std::to_string(key) + "]\n";
            oracle.erase(key);
        } else {
            body += "    d[" + std::to_string(key) + "] += 1\n";
            ++oracle[key];
        }
    }
    // Compare via a deterministic checksum: sum of key*1000 + value.
    body += "    total = 0\n"
            "    for k, v in d.items():\n"
            "        total += k * 1000 + v\n"
            "    return total * 100 + len(d)\n";
    int64_t expected = 0;
    for (const auto &[k, v] : oracle)
        expected += k * 1000 + v;
    expected = expected * 100 + static_cast<int64_t>(oracle.size());

    // Run under three different hash seeds: the checksum must not
    // depend on hash randomization.
    for (uint64_t hs : {1ULL, 77ULL, 0xffffULL}) {
        Program prog = compileSource(body);
        InterpConfig cfg;
        cfg.hashSeed = hs;
        Interp interp(prog, cfg);
        interp.runModule();
        Value r = interp.callGlobal("run", {Value::makeInt(0)});
        ASSERT_TRUE(r.isInt());
        EXPECT_EQ(r.asInt(), expected) << "hashSeed=" << hs;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DictDifferential,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

} // namespace
} // namespace vm
} // namespace rigor
