/**
 * @file
 * Crash-point enumeration tests: fork a child with a FaultyFsOps that
 * kills the process at FsOps call N, for every N until the operation
 * completes, and assert that recovery from the survivor's point of
 * view always yields the pre-operation or the post-operation state —
 * never a third, torn one. Also covers the non-crash fault kinds
 * (ENOSPC, short writes, fsync failure, torn rename) against the
 * durable-write layer, and two concurrent forked archive appenders.
 *
 * The child installs the faulty seam and runs the operation; CrashAt
 * models power loss with _exit(), so nothing the child buffered
 * survives. The parent then plays the role of the next process start:
 * loadStateFile / fsck / scan must make sense of whatever is on disk.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "archive/archive.hh"
#include "archive/fsck.hh"
#include "harness/fault.hh"
#include "support/durable_io.hh"
#include "support/logging.hh"

namespace rigor {
namespace harness {
namespace {

/** Fresh scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    ScratchDir()
    {
        char tmpl[] = "/tmp/rigor_crash_XXXXXX";
        const char *d = ::mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        dir_ = d ? d : ".";
    }

    ~ScratchDir()
    {
        std::string cmd = "rm -rf '" + dir_ + "'";
        int rc = std::system(cmd.c_str());
        (void)rc;
    }

    const std::string &dir() const { return dir_; }

    std::string path(const std::string &name) const
    {
        return dir_ + "/" + name;
    }

  private:
    std::string dir_;
};

Json
samplePayload(int marker)
{
    Json p = Json::object();
    p.set("marker", marker);
    p.set("note", std::string("crash-consistency payload #") +
                      std::to_string(marker));
    return p;
}

harness::RunResult
makeRun(const std::string &workload)
{
    harness::RunResult run;
    run.workload = workload;
    run.tier = vm::Tier::Interp;
    run.size = 10;
    harness::InvocationResult ir;
    ir.invocationSeed = 7;
    harness::IterationSample s;
    s.timeMs = 1.25;
    ir.samples.push_back(s);
    run.invocations.push_back(ir);
    run.invocationsAttempted = 1;
    return run;
}

/**
 * Run `fn` in a forked child and return its exit status (-1 when the
 * child died on a signal). The child never returns: it runs fn() and
 * _exit()s — 0 on completion, 3 on an exception — unless an armed
 * CrashAt fault _exit(kExitCrashInjected)s first.
 */
template <typename Fn>
int
runInChild(Fn fn)
{
    ::pid_t pid = ::fork();
    EXPECT_GE(pid, 0);
    if (pid == 0) {
        try {
            fn();
        } catch (...) {
            ::_exit(3);
        }
        ::_exit(0);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/** Child body: install a crash-at=`n` seam, then run `op`. */
template <typename Op>
int
runChildCrashingAt(int n, Op op)
{
    return runInChild([n, &op] {
        std::vector<IoFaultSpec> faults{FaultPlan::parseIoSpec(
            "io:crash-at=" + std::to_string(n))};
        FaultyFsOps faulty(std::move(faults), 0);
        setFsOps(&faulty);
        op();
    });
}

// Every sweep must terminate: the operations under test make a small,
// bounded number of FsOps calls. The cap only turns an unexpected
// livelock into a test failure instead of a hang.
constexpr int kSweepCap = 128;

TEST(CrashSweep, WriteStateFileYieldsPreOrPostState)
{
    ScratchDir scratch;
    std::string p = scratch.path("state.json");
    std::string pre = samplePayload(1).dump();
    std::string post = samplePayload(2).dump();

    bool completed = false;
    for (int n = 1; n <= kSweepCap && !completed; ++n) {
        // Reset to the pre-operation state so every crash point sees
        // the identical call sequence.
        ::unlink(p.c_str());
        ::unlink((p + ".bak").c_str());
        ::unlink((p + ".tmp").c_str());
        writeStateFile(p, samplePayload(1));

        int rc = runChildCrashingAt(
            n, [&p] { writeStateFile(p, samplePayload(2)); });
        completed = rc == 0;
        ASSERT_TRUE(rc == 0 || rc == kExitCrashInjected)
            << "crash point " << n << " exited " << rc;

        // Recovery: whatever the crash left behind, the loader must
        // produce exactly the old or the new payload.
        StateLoad load = loadStateFile(p);
        std::string got = load.payload.dump();
        EXPECT_TRUE(got == pre || got == post)
            << "crash point " << n << " recovered a third state: "
            << got;
        if (rc == 0)
            EXPECT_EQ(got, post) << "completed write lost data";
    }
    EXPECT_TRUE(completed)
        << "writeStateFile made more than " << kSweepCap
        << " FsOps calls";
}

TEST(CrashSweep, ArchiveAppendRecoversToPreOrPostState)
{
    ScratchDir scratch;
    bool completed = false;
    for (int n = 1; n <= kSweepCap && !completed; ++n) {
        // Fresh archive per crash point: one healthy entry, then a
        // child append that dies at call n.
        std::string dir =
            scratch.path("archive-" + std::to_string(n));
        {
            archive::RunArchive ar(dir);
            ASSERT_EQ(
                ar.append(Json::object(), "seed", "run",
                          {makeRun("pre")}),
                1);
        }

        int rc = runChildCrashingAt(n, [&dir] {
            archive::RunArchive ar(dir);
            ar.append(Json::object(), "crashing", "run",
                      {makeRun("post")});
        });
        completed = rc == 0;
        ASSERT_TRUE(rc == 0 || rc == kExitCrashInjected)
            << "crash point " << n << " exited " << rc;

        // The next process start: repair sweeps any orphaned .tmp,
        // after which the archive must hold exactly the pre-append or
        // the post-append entry set.
        archive::FsckReport report = archive::fsckArchive(dir, true);
        EXPECT_TRUE(report.clean())
            << "crash point " << n << " left unrepairable damage:\n"
            << archive::renderFsck(report);

        archive::RunArchive ar(dir);
        archive::ScanResult scan = ar.scan();
        ASSERT_TRUE(scan.entries.size() == 1 ||
                    scan.entries.size() == 2)
            << "crash point " << n << " left "
            << scan.entries.size() << " entries";
        EXPECT_EQ(scan.entries[0].id, 1);
        EXPECT_EQ(ar.load(scan.entries[0]).runs[0].workload, "pre");
        if (scan.entries.size() == 2) {
            EXPECT_EQ(scan.entries[1].id, 2);
            EXPECT_EQ(ar.load(scan.entries[1]).runs[0].workload,
                      "post");
        }
        if (rc == 0)
            EXPECT_EQ(scan.entries.size(), 2u)
                << "completed append lost its entry";
    }
    EXPECT_TRUE(completed)
        << "archive append made more than " << kSweepCap
        << " FsOps calls";
}

TEST(CrashSweep, InjectedCrashUsesTheDocumentedExitCode)
{
    ScratchDir scratch;
    std::string p = scratch.path("state.json");
    int rc = runChildCrashingAt(
        1, [&p] { writeStateFile(p, samplePayload(1)); });
    EXPECT_EQ(rc, kExitCrashInjected);
}

TEST(ConcurrentWriters, ForkedAppendersNeverCollideOnIds)
{
    ScratchDir scratch;
    std::string dir = scratch.path("archive");
    {
        // Create the directory up front so neither child races mkdir.
        archive::RunArchive ar(dir);
        ASSERT_EQ(ar.append(Json::object(), "", "run",
                            {makeRun("seed")}),
                  1);
    }

    auto appender = [&dir](const std::string &who) {
        archive::RunArchive ar(dir);
        for (int i = 0; i < 4; ++i)
            ar.append(Json::object(), who, "run",
                      {makeRun(who + std::to_string(i))});
    };
    ::pid_t left = ::fork();
    ASSERT_GE(left, 0);
    if (left == 0) {
        try {
            appender("left");
        } catch (...) {
            ::_exit(3);
        }
        ::_exit(0);
    }
    int rcRight = runInChild([&appender] { appender("right"); });
    int status = 0;
    ::waitpid(left, &status, 0);
    int rcLeft = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    EXPECT_EQ(rcLeft, 0);
    EXPECT_EQ(rcRight, 0);

    archive::RunArchive ar(dir);
    archive::ScanResult scan = ar.scan();
    ASSERT_EQ(scan.entries.size(), 9u);
    int leftSeen = 0, rightSeen = 0;
    for (size_t i = 0; i < scan.entries.size(); ++i) {
        // Ids are dense and ascending: the lock serialized the
        // appends, so no id was skipped or assigned twice.
        EXPECT_EQ(scan.entries[i].id, static_cast<int>(i) + 1);
        const std::string &label = scan.entries[i].label;
        leftSeen += label == "left";
        rightSeen += label == "right";
    }
    EXPECT_EQ(leftSeen, 4);
    EXPECT_EQ(rightSeen, 4);
    EXPECT_TRUE(archive::fsckArchive(dir, false).clean());
}

/** Installs a FaultyFsOps for one scope; restores the default after. */
class FaultScope
{
  public:
    explicit FaultScope(const std::string &spec, uint64_t seed = 0)
        : ops_({FaultPlan::parseIoSpec(spec)}, seed)
    {
        prev_ = setFsOps(&ops_);
    }

    ~FaultScope() { setFsOps(prev_); }

  private:
    FaultyFsOps ops_;
    FsOps *prev_;
};

TEST(IoFaults, EnospcFailsTheWriteLoudly)
{
    ScratchDir scratch;
    std::string p = scratch.path("state.json");
    writeStateFile(p, samplePayload(1));
    {
        FaultScope fault("io:enospc");
        EXPECT_THROW(writeStateFile(p, samplePayload(2)),
                     FatalError);
    }
    // The failed write cleaned up its staging file and the previous
    // checkpoint (rotated to .bak before the write) is recovered.
    EXPECT_NE(::access((p + ".tmp").c_str(), F_OK), 0);
    StateLoad load = loadStateFile(p);
    EXPECT_EQ(load.payload.dump(), samplePayload(1).dump());
}

TEST(IoFaults, FsyncFailureFailsTheWriteLoudly)
{
    ScratchDir scratch;
    std::string p = scratch.path("state.json");
    writeStateFile(p, samplePayload(1));
    {
        FaultScope fault("io:fsync-fail");
        EXPECT_THROW(writeStateFile(p, samplePayload(2)),
                     FatalError);
    }
    StateLoad load = loadStateFile(p);
    EXPECT_EQ(load.payload.dump(), samplePayload(1).dump());
}

TEST(IoFaults, PersistentShortWritesStillComplete)
{
    // One byte per write(): the atomic-write loop must keep retrying
    // and the end state must be the full, verified file.
    ScratchDir scratch;
    std::string p = scratch.path("state.json");
    {
        FaultScope fault("io:short-write:n=1000000:mag=1");
        writeStateFile(p, samplePayload(7));
    }
    StateLoad load = loadStateFile(p);
    EXPECT_FALSE(load.usedBackup);
    EXPECT_EQ(load.payload.dump(), samplePayload(7).dump());
}

TEST(IoFaults, TornRenameIsCaughtByTheEnvelope)
{
    ScratchDir scratch;
    std::string p = scratch.path("state.json");
    writeStateFile(p, samplePayload(1));
    writeStateFile(p, samplePayload(2));
    {
        // Tear only the tmp -> main publication rename (the .bak
        // rotation renames the main file, whose path has no ".tmp").
        FaultScope fault("io:torn-rename:path=.tmp");
        // The torn rename reports success — like a crashed kernel
        // that acked the rename before writing it out.
        writeStateFile(p, samplePayload(3));
    }
    StateLoad load = loadStateFile(p);
    EXPECT_TRUE(load.usedBackup);
    EXPECT_EQ(load.payload.dump(), samplePayload(2).dump());
}

TEST(IoFaults, CrashSweepIsDeterministic)
{
    // The same crash point must leave byte-identical on-disk state on
    // every run — that is what makes torture runs reproducible.
    ScratchDir scratch;
    for (int round = 0; round < 2; ++round) {
        std::string p =
            scratch.path("state" + std::to_string(round) + ".json");
        writeStateFile(p, samplePayload(1));
        int rc = runChildCrashingAt(
            4, [&p] { writeStateFile(p, samplePayload(2)); });
        ASSERT_EQ(rc, kExitCrashInjected);
    }
    std::string a, b;
    ASSERT_TRUE(readFile(scratch.path("state0.json.tmp"), a) ||
                readFile(scratch.path("state0.json"), a));
    ASSERT_TRUE(readFile(scratch.path("state1.json.tmp"), b) ||
                readFile(scratch.path("state1.json"), b));
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace harness
} // namespace rigor
