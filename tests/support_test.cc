/**
 * @file
 * Support-library tests: RNG determinism and distribution moments,
 * JSON round-trips, CSV quoting, string utilities, tables, logging.
 */

#include <clocale>
#include <cstdint>
#include <sstream>

#include <gtest/gtest.h>

#include "support/csv.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/str.hh"
#include "support/table.hh"

namespace rigor {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.nextU64() == b.nextU64())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedIsInRangeAndUnbiased)
{
    Rng rng(7);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i) {
        uint64_t v = rng.nextBounded(10);
        ASSERT_LT(v, 10u);
        ++counts[static_cast<size_t>(v)];
    }
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 500);
    EXPECT_THROW(rng.nextBounded(0), PanicError);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    double sum = 0.0, sumsq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double x = rng.nextGaussian();
        sum += x;
        sumsq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExponential(2.0);
    EXPECT_NEAR(sum / n, 0.5, 0.01);
    EXPECT_THROW(rng.nextExponential(0.0), PanicError);
}

TEST(Rng, RangeAndBernoulli)
{
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.nextRange(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        if (rng.nextBernoulli(0.25))
            ++heads;
    EXPECT_NEAR(heads, 2500, 200);
}

TEST(Rng, SplitIndependence)
{
    Rng parent(19);
    Rng child = parent.split();
    uint64_t p1 = parent.nextU64();
    // A fresh parent split the same way gives the same child stream.
    Rng parent2(19);
    Rng child2 = parent2.split();
    EXPECT_EQ(child.nextU64(), child2.nextU64());
    EXPECT_EQ(parent2.nextU64(), p1);
}

TEST(Rng, ShufflePermutes)
{
    Rng rng(23);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    rng.shuffle(v);
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, orig);
}

TEST(Json, ScalarsAndDump)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(int64_t{42}).dump(), "42");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
    EXPECT_EQ(Json(1.5).dump(), "1.5");
}

TEST(Json, ObjectOrderingDeterministic)
{
    Json o = Json::object();
    o.set("zebra", 1);
    o.set("apple", 2);
    EXPECT_EQ(o.dump(), "{\"apple\":2,\"zebra\":1}");
}

TEST(Json, RoundTrip)
{
    Json root = Json::object();
    root.set("name", "bench");
    root.set("count", 3);
    root.set("ratio", 0.25);
    root.set("flag", true);
    root.set("nothing", Json());
    Json arr = Json::array();
    arr.push(1);
    arr.push("two");
    arr.push(Json::array());
    root.set("items", std::move(arr));

    Json parsed = Json::parse(root.dump());
    EXPECT_EQ(parsed.at("name").asString(), "bench");
    EXPECT_EQ(parsed.at("count").asInt(), 3);
    EXPECT_DOUBLE_EQ(parsed.at("ratio").asDouble(), 0.25);
    EXPECT_TRUE(parsed.at("flag").asBool());
    EXPECT_TRUE(parsed.at("nothing").isNull());
    EXPECT_EQ(parsed.at("items").size(), 3u);
    EXPECT_EQ(parsed.at("items").at(1).asString(), "two");
}

TEST(Json, StringEscapes)
{
    Json s(std::string("a\"b\\c\nd\te"));
    Json parsed = Json::parse(s.dump());
    EXPECT_EQ(parsed.asString(), "a\"b\\c\nd\te");
}

TEST(Json, ParseErrors)
{
    EXPECT_THROW(Json::parse("{"), FatalError);
    EXPECT_THROW(Json::parse("[1,]2"), FatalError);
    EXPECT_THROW(Json::parse("tru"), FatalError);
    EXPECT_THROW(Json::parse("\"unterminated"), FatalError);
    EXPECT_THROW(Json::parse("{\"a\":1} extra"), FatalError);
}

// Regression: number parsing used std::stod, which honors LC_NUMERIC.
// Under a comma-decimal locale (de_DE, fr_FR, ...) "1.5" stopped at
// the '.' and silently parsed as 1.0. std::from_chars is
// locale-independent, so parsing must now agree byte for byte with
// the "C" locale whatever the process locale is.
TEST(Json, NumberParsingIsLocaleIndependent)
{
    const char *candidates[] = {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                                "fr_FR.UTF-8", "fr_FR.utf8", "fr_FR"};
    const char *applied = nullptr;
    for (const char *name : candidates)
        if (std::setlocale(LC_ALL, name)) {
            applied = name;
            break;
        }
    if (!applied)
        GTEST_SKIP() << "no comma-decimal locale installed";
    // Paranoia: only proceed if the locale really uses ','.
    if (std::localeconv()->decimal_point[0] != ',') {
        std::setlocale(LC_ALL, "C");
        GTEST_SKIP() << applied << " does not use ',' decimals";
    }
    Json parsed = Json::parse("[1.5, -0.25, 6.02e23]");
    std::setlocale(LC_ALL, "C");
    EXPECT_DOUBLE_EQ(parsed.at(0).asDouble(), 1.5);
    EXPECT_DOUBLE_EQ(parsed.at(1).asDouble(), -0.25);
    EXPECT_DOUBLE_EQ(parsed.at(2).asDouble(), 6.02e23);
}

// Regression: std::stod threw std::out_of_range on "1e999", which
// escaped the parser as an unrelated exception type. Range errors
// must surface as ordinary parse failures.
TEST(Json, OutOfRangeNumbersAreParseErrors)
{
    EXPECT_THROW(Json::parse("1e999"), FatalError);
    EXPECT_THROW(Json::parse("-1e999"), FatalError);
    EXPECT_THROW(Json::parse("{\"x\": [1, 2, 1e999]}"), FatalError);
    // Near-the-edge values still parse.
    EXPECT_DOUBLE_EQ(Json::parse("1e308").asDouble(), 1e308);
}

TEST(Json, HugeIntegerLiteralFallsBackToDouble)
{
    // Larger than int64: kept as a double, as before.
    Json v = Json::parse("99999999999999999999");
    EXPECT_EQ(v.type(), Json::Type::Double);
    EXPECT_DOUBLE_EQ(v.asDouble(), 1e20);
    Json n = Json::parse("-99999999999999999999");
    EXPECT_DOUBLE_EQ(n.asDouble(), -1e20);
    // Full int64 range stays integral.
    EXPECT_EQ(Json::parse("9223372036854775807").asInt(),
              INT64_MAX);
    EXPECT_EQ(Json::parse("-9223372036854775808").asInt(),
              INT64_MIN);
}

TEST(Json, TypeErrorsPanic)
{
    Json i(int64_t{1});
    EXPECT_THROW(i.asString(), PanicError);
    EXPECT_THROW(i.at("x"), PanicError);
    Json o = Json::object();
    EXPECT_THROW(o.at("missing"), PanicError);
    EXPECT_THROW(o.push(Json()), PanicError);
}

TEST(Json, PrettyPrintIndents)
{
    Json o = Json::object();
    o.set("a", 1);
    std::string pretty = o.dump(2);
    EXPECT_NE(pretty.find("\n  \"a\": 1"), std::string::npos);
}

TEST(Csv, QuotingRules)
{
    EXPECT_EQ(CsvWriter::quote("plain"), "plain");
    EXPECT_EQ(CsvWriter::quote("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::quote("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, RowsAndFields)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.writeRow({"name", "x"});
    csv.field(std::string("a,b")).field(int64_t{-3});
    csv.endRow();
    csv.field(3.5).field(uint64_t{7});
    csv.endRow();
    EXPECT_EQ(os.str(), "name,x\n\"a,b\",-3\n3.5,7\n");
}

TEST(Str, SplitJoinTrim)
{
    EXPECT_EQ(split("a,b,,c", ','),
              (std::vector<std::string>{"a", "b", "", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(join({"x", "y", "z"}, "--"), "x--y--z");
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim("   "), "");
}

TEST(Str, PredicatesAndCase)
{
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_FALSE(startsWith("fo", "foo"));
    EXPECT_TRUE(endsWith("foobar", "bar"));
    EXPECT_EQ(toLower("MiXeD"), "mixed");
}

TEST(Str, Formatting)
{
    EXPECT_EQ(padLeft("x", 3), "  x");
    EXPECT_EQ(padRight("x", 3), "x  ");
    EXPECT_EQ(padLeft("abcd", 2), "abcd");
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
    EXPECT_EQ(fmtCount(12), "12");
    EXPECT_EQ(repeat('-', 3), "---");
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1.25"});
    t.addRow({"b", "100"});
    t.setCaption("Demo");
    std::string out = t.render();
    EXPECT_NE(out.find("Demo"), std::string::npos);
    EXPECT_NE(out.find("| alpha |"), std::string::npos);
    // Numeric column is right-aligned.
    EXPECT_NE(out.find("|  1.25 |"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(Logging, PanicAndFatalThrow)
{
    EXPECT_THROW(panic("boom %d", 7), PanicError);
    EXPECT_THROW(fatal("bad input %s", "x"), FatalError);
    try {
        panic("value=%d", 42);
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("value=42"),
                  std::string::npos);
    }
}

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("%s-%03d", "id", 5), "id-005");
    EXPECT_EQ(strprintf("plain"), "plain");
}

} // namespace
} // namespace rigor
