/**
 * @file
 * Serve-subsystem tests: JobSpec/QuerySpec JSON round-trips and
 * validation, the durable priority-FIFO JobQueue (persist/restore,
 * drain semantics, daemon-assigned resume paths), protocol envelope
 * checking, and the shared execution engine's daemon-facing contract
 * — suite heartbeats route through the installed LogSink (so a
 * per-job-thread sink captures them and --quiet fully silences them)
 * and a job's streamed report is deterministic across executions.
 */

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "serve/jobrun.hh"
#include "serve/jobspec.hh"
#include "serve/protocol.hh"
#include "serve/queue.hh"
#include "support/logging.hh"
#include "support/schema.hh"
#include "workloads/workloads.hh"

namespace rigor {
namespace serve {
namespace {

/** Fresh scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    ScratchDir()
    {
        char tmpl[] = "/tmp/rigor_serve_XXXXXX";
        const char *d = ::mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        dir_ = d ? d : ".";
    }

    ~ScratchDir()
    {
        std::string cmd = "rm -rf '" + dir_ + "'";
        int rc = std::system(cmd.c_str());
        (void)rc;
    }

    const std::string &dir() const { return dir_; }

  private:
    std::string dir_;
};

/** RAII capture of this thread's log messages. */
class ThreadSinkCapture
{
  public:
    ThreadSinkCapture()
    {
        previous_ = setThreadLogSink(
            [this](LogLevel level, const std::string &msg) {
                lines.emplace_back(level, msg);
            });
    }
    ~ThreadSinkCapture() { setThreadLogSink(std::move(previous_)); }

    std::vector<std::pair<LogLevel, std::string>> lines;

  private:
    LogSink previous_;
};

JobSpec
tinySuiteSpec()
{
    JobSpec spec;
    spec.command = "suite";
    // Two invocations is the floor for the rigorous CI estimate;
    // a tiny size for every workload keeps this fast under
    // sanitizers (the heartbeat cadence under test is per-workload,
    // not per-iteration).
    spec.invocations = 2;
    spec.iterations = 2;
    spec.size = 4;
    return spec;
}

TEST(JobSpec, RoundTripIsExact)
{
    JobSpec spec;
    spec.command = "run";
    spec.workload = "queens";
    spec.tier = vm::Tier::Threaded;
    spec.invocations = 5;
    spec.iterations = 7;
    spec.jobs = 3;
    spec.size = 42;
    spec.seed = 0xdeadbeefcafef00dULL;
    spec.jitThreshold = 11;
    spec.noNoise = true;
    spec.quiet = true;
    spec.maxRetries = 4;
    spec.deadlineMs = 12.5;
    spec.injectSpecs = {"throw:wl=queens:inv=2", "stall:p=0.5"};
    spec.jsonPath = "/tmp/x.json";
    spec.csvPath = "/tmp/x.csv";
    spec.metricsPath = "/tmp/x.metrics";
    spec.tracePath = "/tmp/x.trace";
    spec.archiveDir = "/tmp/arch";
    spec.label = "lbl";

    JobSpec back = jobSpecFromJson(jobSpecToJson(spec));
    EXPECT_EQ(jobSpecToJson(back).dump(), jobSpecToJson(spec).dump());
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(back.tier, vm::Tier::Threaded);
    EXPECT_EQ(back.injectSpecs, spec.injectSpecs);
}

TEST(JobSpec, RejectsUnknownCommandAndBadCheckpoint)
{
    JobSpec spec;
    spec.command = "frobnicate";
    EXPECT_THROW(jobSpecFromJson(jobSpecToJson(spec)), FatalError);

    JobSpec run;
    run.command = "run";
    run.workload = "queens";
    run.checkpointEvery = 4;
    EXPECT_THROW(jobSpecFromJson(jobSpecToJson(run)), FatalError);

    // A submitted suite arrives with checkpoint_every but no resume
    // path (the daemon assigns one at admission) — that must parse.
    JobSpec suite;
    suite.command = "suite";
    suite.checkpointEvery = 4;
    EXPECT_NO_THROW(jobSpecFromJson(jobSpecToJson(suite)));
}

TEST(QuerySpec, RoundTripIsExact)
{
    QuerySpec q;
    q.kind = "gate";
    q.baseRef = "v1";
    q.candRef = "HEAD";
    q.archiveDir = "/tmp/arch";
    q.resamples = 500;
    q.confidence = 0.9;
    q.gateThresholdPct = 2.5;
    q.baseTier = "interp";
    q.candTier = "adaptive";
    q.explainGate = true;
    q.seed = 7;
    QuerySpec back = querySpecFromJson(querySpecToJson(q));
    EXPECT_EQ(querySpecToJson(back).dump(), querySpecToJson(q).dump());
}

TEST(Protocol, HeaderMismatchIsFatal)
{
    Json ok = makeRequest("status");
    EXPECT_NO_THROW(checkProtocolHeader(ok));

    Json wrongSchema = makeRequest("status");
    wrongSchema.set("schema", "something-else");
    EXPECT_THROW(checkProtocolHeader(wrongSchema), FatalError);

    Json wrongVersion = makeRequest("status");
    wrongVersion.set("version", kServeProtocolVersion + 1);
    EXPECT_THROW(checkProtocolHeader(wrongVersion), FatalError);
}

TEST(JobQueue, PriorityThenFifo)
{
    ScratchDir scratch;
    JobQueue q(scratch.dir());
    JobSpec spec;
    spec.command = "run";
    spec.workload = "queens";
    int a = q.submit(spec, 10, "a").id;
    int b = q.submit(spec, 5, "b").id;
    int c = q.submit(spec, 5, "c").id;

    // Lowest priority number first; FIFO among equals.
    JobRecord *next = q.nextRunnable();
    ASSERT_NE(next, nullptr);
    EXPECT_EQ(next->id, b);
    next->state = JobState::Running;
    next = q.nextRunnable();
    EXPECT_EQ(next->id, c);
    next->state = JobState::Done;
    next = q.nextRunnable();
    EXPECT_EQ(next->id, a);
}

TEST(JobQueue, SuiteJobsGetDurableResumePaths)
{
    ScratchDir scratch;
    JobQueue q(scratch.dir());
    JobSpec suite;
    suite.command = "suite";
    EXPECT_FALSE(q.submit(suite, 10, "").spec.resumePath.empty());

    // Archiving suites are excluded (the archive/resume exclusion):
    // they restart from scratch on resume, byte-identically.
    JobSpec archived;
    archived.command = "suite";
    archived.archiveDir = scratch.dir() + "/arch";
    EXPECT_TRUE(q.submit(archived, 10, "").spec.resumePath.empty());

    JobSpec run;
    run.command = "run";
    run.workload = "queens";
    EXPECT_TRUE(q.submit(run, 10, "").spec.resumePath.empty());
}

TEST(JobQueue, RestoreRequeuesInFlightJobsBitExactly)
{
    ScratchDir scratch;
    JobSpec spec;
    spec.command = "run";
    spec.workload = "queens";
    spec.seed = 0x1234abcdULL;
    std::string specDump;
    int runningId, doneId;
    {
        JobQueue q(scratch.dir());
        JobRecord &running = q.submit(spec, 3, "tenant-a");
        runningId = running.id;
        specDump = jobSpecToJson(running.spec).dump();
        running.state = JobState::Running;
        JobRecord &done = q.submit(spec, 10, "tenant-b");
        doneId = done.id;
        done.state = JobState::Done;
        done.exitCode = 0;
        q.persist();
    }
    JobQueue q2(scratch.dir());
    ASSERT_TRUE(q2.stateExists());
    q2.restore();

    // The drained Running job is Queued again with its spec bit-exact;
    // the finished one keeps its result.
    JobRecord *running = q2.find(runningId);
    ASSERT_NE(running, nullptr);
    EXPECT_EQ(running->state, JobState::Queued);
    EXPECT_EQ(running->exitCode, -1);
    EXPECT_EQ(running->priority, 3);
    EXPECT_EQ(running->client, "tenant-a");
    EXPECT_EQ(jobSpecToJson(running->spec).dump(), specDump);
    JobRecord *done = q2.find(doneId);
    ASSERT_NE(done, nullptr);
    EXPECT_EQ(done->state, JobState::Done);
    EXPECT_EQ(done->exitCode, 0);

    // Ids keep advancing: never reused across a restart.
    EXPECT_GT(q2.submit(spec, 10, "").id, doneId);
}

TEST(ServeJob, SuiteHeartbeatRoutesThroughLogSink)
{
    ThreadSinkCapture capture;
    std::string output;
    JobHooks hooks;
    hooks.output = [&](const std::string &chunk) { output += chunk; };
    EXPECT_EQ(executeJob(tinySuiteSpec(), hooks), 0);

    // One heartbeat per workload, all through the sink — this is what
    // keeps concurrent daemon jobs' heartbeats from interleaving on a
    // shared stderr.
    int heartbeats = 0;
    for (const auto &[level, msg] : capture.lines)
        if (level == LogLevel::Info &&
            msg.compare(0, 7, "suite [") == 0)
            ++heartbeats;
    EXPECT_EQ(static_cast<size_t>(heartbeats),
              workloads::suite().size());
    EXPECT_NE(output.find("geomean speedup"), std::string::npos);
}

TEST(ServeJob, QuietSilencesHeartbeatsCompletely)
{
    ThreadSinkCapture capture;
    JobSpec spec = tinySuiteSpec();
    spec.quiet = true;
    // As in the daemon's worker: the job thread carries the job's
    // quiet so deeper layers (parallel workers included) are silent.
    bool prevQuiet = setThreadQuiet(true);
    JobHooks hooks;
    hooks.output = [](const std::string &) {};
    int rc = executeJob(spec, hooks);
    setThreadQuiet(prevQuiet);
    EXPECT_EQ(rc, 0);
    EXPECT_TRUE(capture.lines.empty());
}

TEST(ServeJob, RunReportIsDeterministic)
{
    JobSpec spec;
    spec.command = "run";
    spec.workload = "queens";
    spec.invocations = 2;
    spec.iterations = 3;
    spec.size = 5;

    auto execute = [&spec]() {
        std::string out;
        JobHooks hooks;
        hooks.output = [&out](const std::string &chunk) {
            out += chunk;
        };
        EXPECT_EQ(executeJob(spec, hooks), 0);
        return out;
    };
    std::string first = execute();
    std::string second = execute();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

} // namespace
} // namespace serve
} // namespace rigor
