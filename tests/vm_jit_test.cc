/**
 * @file
 * Adaptive-tier (JIT model) tests: tier-up triggering, quickened
 * opcode execution, guard failures on type instability, inline-cache
 * cost accounting, compile-pause visibility, and observer event
 * discipline (no dispatch events from compiled code; balanced
 * call/return events).
 */

#include <gtest/gtest.h>

#include "vm/compiler.hh"
#include "vm/interp.hh"

namespace rigor {
namespace vm {
namespace {

/** Observer that records event counts for assertions. */
class RecordingObserver : public ExecutionObserver
{
  public:
    void
    onBytecode(Op op, uint32_t uops) override
    {
        ++bytecodes;
        totalUops += uops;
        if (op >= Op::FirstQuickened)
            ++quickenedBytecodes;
    }
    void onDispatch(Op) override { ++dispatches; }
    void onBranch(uint64_t, bool) override { ++branches; }
    void onMemAccess(uint64_t, uint32_t, bool) override { ++mems; }
    void onAlloc(uint64_t, uint32_t) override { ++allocs; }
    void onCall() override { ++calls; }
    void onReturn() override { ++returns; }
    void
    onJitCompile(uint32_t, uint64_t cost) override
    {
        ++compiles;
        compileUops += cost;
    }
    void onGuardFailure(Op) override { ++guardFailures; }

    uint64_t bytecodes = 0;
    uint64_t quickenedBytecodes = 0;
    uint64_t totalUops = 0;
    uint64_t dispatches = 0;
    uint64_t branches = 0;
    uint64_t mems = 0;
    uint64_t allocs = 0;
    uint64_t calls = 0;
    uint64_t returns = 0;
    uint64_t compiles = 0;
    uint64_t compileUops = 0;
    uint64_t guardFailures = 0;
};

const char *kHotLoop =
    "def run(n):\n"
    "    total = 0\n"
    "    i = 0\n"
    "    while i < n:\n"
    "        total = total + i\n"
    "        i = i + 1\n"
    "    return total\n";

TEST(Jit, TierUpAfterThreshold)
{
    Program prog = compileSource(kHotLoop);
    InterpConfig cfg;
    cfg.tier = Tier::Adaptive;
    cfg.jitThreshold = 100;
    Interp interp(prog, cfg);
    interp.runModule();
    EXPECT_EQ(interp.stats().jitCompiles, 0u);
    interp.callGlobal("run", {Value::makeInt(1000)});
    EXPECT_GE(interp.stats().jitCompiles, 1u);
}

TEST(Jit, InterpTierNeverCompiles)
{
    Program prog = compileSource(kHotLoop);
    InterpConfig cfg;
    cfg.tier = Tier::Interp;
    cfg.jitThreshold = 1;
    Interp interp(prog, cfg);
    interp.runModule();
    interp.callGlobal("run", {Value::makeInt(10000)});
    EXPECT_EQ(interp.stats().jitCompiles, 0u);
}

TEST(Jit, QuickenedOpcodesExecuteAfterCompile)
{
    Program prog = compileSource(kHotLoop);
    InterpConfig cfg;
    cfg.tier = Tier::Adaptive;
    cfg.jitThreshold = 10;
    RecordingObserver obs;
    Interp interp(prog, cfg, &obs);
    interp.runModule();
    Value r = interp.callGlobal("run", {Value::makeInt(5000)});
    EXPECT_EQ(r.asInt(), 5000LL * 4999 / 2);
    EXPECT_GT(obs.quickenedBytecodes, 1000u);
    EXPECT_GE(obs.compiles, 1u);
    EXPECT_GT(obs.compileUops, 0u);
}

TEST(Jit, CompiledCodeEmitsNoDispatches)
{
    Program prog = compileSource(kHotLoop);
    InterpConfig cfg;
    cfg.tier = Tier::Adaptive;
    cfg.jitThreshold = 10;
    RecordingObserver warm_obs;
    Interp interp(prog, cfg, &warm_obs);
    interp.runModule();
    interp.callGlobal("run", {Value::makeInt(2000)});  // warms up

    // After warmup, a fresh count of one more call sees (almost) no
    // dispatches: only the un-compiled module-level path would
    // dispatch, and we re-enter the compiled function directly.
    uint64_t dispatches_before = warm_obs.dispatches;
    uint64_t bytecodes_before = warm_obs.bytecodes;
    interp.callGlobal("run", {Value::makeInt(2000)});
    uint64_t new_dispatches = warm_obs.dispatches - dispatches_before;
    uint64_t new_bytecodes = warm_obs.bytecodes - bytecodes_before;
    EXPECT_GT(new_bytecodes, 10000u);
    EXPECT_EQ(new_dispatches, 0u);
}

TEST(Jit, GuardFailuresOnTypeInstability)
{
    // The loop flips between int and float accumulation, defeating
    // the int specialization part of the time.
    Program prog = compileSource(
        "def run(n):\n"
        "    total = 0\n"
        "    i = 0\n"
        "    while i < n:\n"
        "        if i % 2 == 0:\n"
        "            total = total + 1\n"
        "        else:\n"
        "            total = total + 0.5\n"
        "        i = i + 1\n"
        "    return int(total)\n");
    InterpConfig cfg;
    cfg.tier = Tier::Adaptive;
    cfg.jitThreshold = 10;
    Interp interp(prog, cfg);
    interp.runModule();
    Value r = interp.callGlobal("run", {Value::makeInt(1000)});
    EXPECT_EQ(r.asInt(), 750);
    EXPECT_GT(interp.stats().guardFailures, 100u);
}

TEST(Jit, StableTypesProduceFewGuardFailures)
{
    Program prog = compileSource(kHotLoop);
    InterpConfig cfg;
    cfg.tier = Tier::Adaptive;
    cfg.jitThreshold = 10;
    Interp interp(prog, cfg);
    interp.runModule();
    interp.callGlobal("run", {Value::makeInt(5000)});
    EXPECT_LT(interp.stats().guardFailures, 10u);
}

TEST(Jit, CompiledCodeIsCheaperPerBytecode)
{
    Program prog = compileSource(kHotLoop);

    auto uops_per_bytecode = [&](Tier tier) {
        InterpConfig cfg;
        cfg.tier = tier;
        cfg.jitThreshold = 10;
        RecordingObserver obs;
        Interp interp(prog, cfg, &obs);
        interp.runModule();
        // Warm up, then measure the second call only.
        interp.callGlobal("run", {Value::makeInt(2000)});
        uint64_t u0 = obs.totalUops, b0 = obs.bytecodes;
        interp.callGlobal("run", {Value::makeInt(2000)});
        return static_cast<double>(obs.totalUops - u0) /
            static_cast<double>(obs.bytecodes - b0);
    };

    double interp_cost = uops_per_bytecode(Tier::Interp);
    double jit_cost = uops_per_bytecode(Tier::Adaptive);
    EXPECT_GT(interp_cost, 3.0 * jit_cost);
}

TEST(Jit, CallReturnEventsBalanced)
{
    Program prog = compileSource(
        "def helper(x):\n"
        "    return x * 2\n"
        "def run(n):\n"
        "    total = 0\n"
        "    for i in range(n):\n"
        "        total += helper(i)\n"
        "    return total\n");
    RecordingObserver obs;
    InterpConfig cfg;
    cfg.tier = Tier::Adaptive;
    cfg.jitThreshold = 20;
    Interp interp(prog, cfg, &obs);
    interp.runModule();
    interp.callGlobal("run", {Value::makeInt(500)});
    EXPECT_EQ(obs.calls, obs.returns);
    EXPECT_GT(obs.calls, 500u);
}

TEST(Jit, DispatchUopsConfigurable)
{
    Program prog = compileSource(kHotLoop);
    auto total_uops = [&](uint32_t dispatch_uops) {
        InterpConfig cfg;
        cfg.tier = Tier::Interp;
        cfg.dispatchUops = dispatch_uops;
        Interp interp(prog, cfg);
        interp.runModule();
        interp.callGlobal("run", {Value::makeInt(1000)});
        return interp.stats().uops;
    };
    uint64_t switch_cost = total_uops(6);
    uint64_t threaded_cost = total_uops(4);
    EXPECT_GT(switch_cost, threaded_cost);
}

TEST(Jit, ObserverBytecodeCountMatchesStats)
{
    Program prog = compileSource(kHotLoop);
    RecordingObserver obs;
    InterpConfig cfg;
    cfg.tier = Tier::Adaptive;
    cfg.jitThreshold = 50;
    Interp interp(prog, cfg, &obs);
    interp.runModule();
    interp.callGlobal("run", {Value::makeInt(300)});
    EXPECT_EQ(obs.bytecodes, interp.stats().bytecodes);
    EXPECT_GT(obs.mems, 0u);
    EXPECT_GT(obs.branches, 0u);
    EXPECT_GT(obs.allocs, 0u);
}

} // namespace
} // namespace vm
} // namespace rigor
