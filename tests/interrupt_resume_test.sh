#!/usr/bin/env bash
# Interrupt/resume integration test for the rigorbench CLI.
#
# Drives the real binary end to end: a suite run is SIGTERM'd
# mid-flight (exit 3), resumed at a different --jobs value (exit 0),
# and the final state, metrics and trace files must be byte-identical
# to an uninterrupted reference run. The same interrupted checkpoint
# is then corrupted to prove recovery via the .bak fallback. Also
# checks rejection of unusable and config-mismatched state and the
# stable exit-code table (0/1/2/3).
#
# The experiment is deliberately small (2 invocations x 2 iterations)
# and the kill delay is derived from the measured reference duration,
# so the signal lands mid-suite on fast release builds and on
# sanitizer builds that run an order of magnitude slower.
#
# Usage: interrupt_resume_test.sh /path/to/rigorbench
set -u

BIN=${1:?usage: $0 /path/to/rigorbench}
WORK=$(mktemp -d /tmp/rigor_resume_XXXXXX)
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

# Common flags: every run must share the resume-config fingerprint
# (seed, invocation plan, quietness, ...). Runs are not --quiet so
# the resume/recovery bookkeeping messages can be checked; the
# progress heartbeats they also get are mirrored into the trace at
# modelled (deterministic) timestamps, so byte-identity still holds.
SUITE_FLAGS=(suite --invocations 2 --iterations 2 --seed 0xfeed
             --checkpoint-every 2 --inject throw:wl=sieve:inv=1:n=1)

run_suite() { # run_suite <dir> <jobs> [extra flags...]
    local dir=$1 jobs=$2
    shift 2
    mkdir -p "$dir"
    "$BIN" "${SUITE_FLAGS[@]}" --jobs "$jobs" \
        --resume "$dir/state.json" --metrics "$dir/metrics.json" \
        --trace "$dir/trace.json" "$@" \
        >"$dir/stdout.txt" 2>"$dir/stderr.txt"
}

# --- reference: one uninterrupted run --------------------------------
ref_start=$SECONDS
run_suite "$WORK/ref" 1 || fail "reference suite run failed (rc=$?)"
ref_dur=$((SECONDS - ref_start))
[ -s "$WORK/ref/state.json" ] || fail "reference wrote no state file"

# --- interrupt a run mid-suite ---------------------------------------
# The binary must be launched directly in the background (not inside a
# compound command) so $! is the benchmark pid, not a subshell's. The
# nap before the SIGTERM starts at a third of the reference duration
# and shrinks on the (unlikely) chance the run still finished first.
interrupt_run() { # interrupt_run <dir> <jobs>
    local dir=$1 jobs=$2 nap rc pid
    for nap in $(awk -v d="$ref_dur" 'BEGIN {
            if (d < 1) d = 1
            printf "%.2f %.2f %.2f 0.1", d / 3, d / 6, d / 15 }'); do
        rm -rf "$dir"
        mkdir -p "$dir"
        "$BIN" "${SUITE_FLAGS[@]}" --jobs "$jobs" \
            --resume "$dir/state.json" \
            --metrics "$dir/metrics.json" \
            --trace "$dir/trace.json" \
            >"$dir/stdout.txt" 2>"$dir/stderr.txt" &
        pid=$!
        sleep "$nap"
        kill -TERM "$pid" 2>/dev/null
        wait "$pid"
        rc=$?
        if [ "$rc" -eq 3 ]; then
            [ -s "$dir/state.json" ] ||
                fail "interrupted run left no checkpoint"
            return 0
        fi
        [ "$rc" -eq 0 ] ||
            fail "interrupted run exited $rc (want 3, or 0 to retry)"
    done
    fail "suite kept finishing before SIGTERM landed"
}

resume_suite() { # resume_suite <dir> <jobs>
    run_suite "$1" "$2" || fail "resume in $1 exited $? (want 0)"
    grep -q "resuming from" "$1/stderr.txt" ||
        fail "resume in $1 did not report resuming"
}

check_identical() { # check_identical <dir> <label>
    local dir=$1 label=$2 f
    for f in state.json metrics.json trace.json; do
        cmp -s "$WORK/ref/$f" "$dir/$f" ||
            fail "$label: $f differs from the uninterrupted reference"
    done
    echo "ok: $label byte-identical to reference"
}

# Interrupt at --jobs 1; keep a copy of the checkpoint (and its .bak)
# for the corruption scenario before the resume consumes it.
interrupt_run "$WORK/cross" 1
[ -s "$WORK/cross/state.json.bak" ] ||
    fail "checkpointing left no .bak to recover from"
mkdir -p "$WORK/corrupt"
cp "$WORK/cross/state.json" "$WORK/cross/state.json.bak" \
    "$WORK/corrupt/"

# Resume at --jobs 4: the acceptance check — byte-identical artifacts
# even though the interrupt and the resume used different job counts.
resume_suite "$WORK/cross" 4
check_identical "$WORK/cross" "interrupt+resume (jobs 1 -> 4)"

# --- corruption recovery: fall back to .bak --------------------------
echo "trailing garbage" >>"$WORK/corrupt/state.json"
resume_suite "$WORK/corrupt" 1
grep -q "recovered the last good checkpoint" \
    "$WORK/corrupt/stderr.txt" ||
    fail "corrupted-state resume did not report .bak recovery"
check_identical "$WORK/corrupt" "resume after state corruption"

# --- unusable state (no backup) is a runtime failure (exit 2) --------
mkdir -p "$WORK/bad"
echo "not a state file" >"$WORK/bad/state.json"
run_suite "$WORK/bad" 1
rc=$?
[ "$rc" -eq 2 ] || fail "garbage state without .bak exited $rc (want 2)"

# --- mismatched config is rejected (exit 2) --------------------------
mkdir -p "$WORK/mismatch"
cp "$WORK/ref/state.json" "$WORK/mismatch/state.json"
"$BIN" suite --invocations 2 --iterations 2 --seed 0xdead \
    --resume "$WORK/mismatch/state.json" \
    >"$WORK/mismatch/stdout.txt" 2>"$WORK/mismatch/stderr.txt"
rc=$?
[ "$rc" -eq 2 ] || fail "config-mismatched resume exited $rc (want 2)"
grep -q "config" "$WORK/mismatch/stderr.txt" ||
    fail "config-mismatched resume did not explain the mismatch"

# --- flag validation is a usage error (exit 1) -----------------------
"$BIN" run nbody --checkpoint-every 2 >/dev/null 2>&1
rc=$?
[ "$rc" -eq 1 ] || fail "--checkpoint-every without suite --resume" \
    "exited $rc (want 1)"

echo "PASS: interrupt/resume integration"
