/**
 * @file
 * Archive fsck tests: one test per defect class (verify-only reports
 * the defect with the action it *would* take; --repair fixes it and a
 * second pass comes back clean), plus the notice classes that must
 * never count as damage, the fsck.* metrics, and the JSON report
 * schema.
 */

#include <cstdlib>
#include <fstream>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

#include "archive/archive.hh"
#include "archive/fsck.hh"
#include "support/durable_io.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/schema.hh"

namespace rigor {
namespace archive {
namespace {

/** Fresh scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    ScratchDir()
    {
        char tmpl[] = "/tmp/rigor_fsck_XXXXXX";
        const char *d = ::mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        dir_ = d ? d : ".";
    }

    ~ScratchDir()
    {
        std::string cmd = "rm -rf '" + dir_ + "'";
        int rc = std::system(cmd.c_str());
        (void)rc;
    }

    const std::string &dir() const { return dir_; }

    std::string path(const std::string &name) const
    {
        return dir_ + "/" + name;
    }

  private:
    std::string dir_;
};

harness::RunResult
makeRun(const std::string &workload)
{
    harness::RunResult run;
    run.workload = workload;
    run.tier = vm::Tier::Interp;
    run.size = 10;
    harness::InvocationResult ir;
    ir.invocationSeed = 3;
    harness::IterationSample s;
    s.timeMs = 2.0;
    ir.samples.push_back(s);
    run.invocations.push_back(ir);
    run.invocationsAttempted = 1;
    return run;
}

/** An archive with `n` healthy entries (ids 1..n). */
void
seedArchive(const std::string &dir, int n)
{
    RunArchive ar(dir);
    for (int i = 1; i <= n; ++i)
        ASSERT_EQ(ar.append(Json::object(), "", "run",
                            {makeRun("w" + std::to_string(i))}),
                  i);
}

void
writeRaw(const std::string &path, const std::string &content)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << content;
    ASSERT_TRUE(os.good());
}

std::string
readRaw(const std::string &path)
{
    std::string out;
    EXPECT_TRUE(readFile(path, out));
    return out;
}

/** The single finding of kind `kind`, or nullptr. */
const FsckFinding *
findingOf(const FsckReport &report, const std::string &kind)
{
    const FsckFinding *found = nullptr;
    for (const auto &f : report.findings)
        if (f.kind == kind) {
            EXPECT_EQ(found, nullptr)
                << "duplicate " << kind << " finding";
            found = &f;
        }
    return found;
}

TEST(Fsck, CleanArchiveIsClean)
{
    ScratchDir scratch;
    seedArchive(scratch.dir(), 2);
    FsckReport report = fsckArchive(scratch.dir(), false);
    EXPECT_EQ(report.entriesScanned, 2);
    EXPECT_EQ(report.entriesOk, 2);
    EXPECT_EQ(report.defects(), 0);
    EXPECT_EQ(report.headId, 2);
    EXPECT_TRUE(report.clean());
    EXPECT_TRUE(report.findings.empty());
    EXPECT_NE(renderFsck(report).find("archive is clean"),
              std::string::npos);
}

TEST(Fsck, MissingDirectoryIsFatal)
{
    EXPECT_THROW(fsckArchive("/tmp/rigor_fsck_does_not_exist_42",
                             false),
                 FatalError);
}

TEST(Fsck, OrphanTmpIsReportedThenSwept)
{
    ScratchDir scratch;
    seedArchive(scratch.dir(), 1);
    std::string tmp = scratch.path("entry-000002.json.tmp");
    writeRaw(tmp, "half-written");

    FsckReport verify = fsckArchive(scratch.dir(), false);
    const FsckFinding *f = findingOf(verify, "orphan-tmp");
    ASSERT_NE(f, nullptr);
    EXPECT_FALSE(f->repaired);
    EXPECT_EQ(f->action, "remove");
    EXPECT_FALSE(verify.clean());
    // Verify-only never touches the directory.
    EXPECT_EQ(::access(tmp.c_str(), F_OK), 0);

    FsckReport repair = fsckArchive(scratch.dir(), true);
    ASSERT_NE(findingOf(repair, "orphan-tmp"), nullptr);
    EXPECT_TRUE(findingOf(repair, "orphan-tmp")->repaired);
    EXPECT_TRUE(repair.clean());
    EXPECT_NE(::access(tmp.c_str(), F_OK), 0);
    EXPECT_TRUE(fsckArchive(scratch.dir(), false).clean());
}

TEST(Fsck, CorruptMainIsRestoredFromBackup)
{
    ScratchDir scratch;
    seedArchive(scratch.dir(), 1);
    std::string main = scratch.path("entry-000001.json");
    std::string good = readRaw(main);
    writeRaw(main + ".bak", good);
    writeRaw(main, good.substr(0, good.size() / 2)); // torn main

    FsckReport verify = fsckArchive(scratch.dir(), false);
    const FsckFinding *f = findingOf(verify, "corrupt-main");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->action, "restore from backup");
    EXPECT_FALSE(verify.clean());

    FsckReport repair = fsckArchive(scratch.dir(), true);
    EXPECT_TRUE(repair.clean());
    EXPECT_EQ(repair.entriesOk, 1);
    EXPECT_EQ(repair.headId, 1);
    // The restored main verifies on its own, no backup fallback.
    EXPECT_FALSE(loadStateFile(main).usedBackup);
    RunArchive ar(scratch.dir());
    ScanResult scan = ar.scan();
    ASSERT_EQ(scan.entries.size(), 1u);
    EXPECT_EQ(ar.load(scan.entries[0]).runs[0].workload, "w1");
}

TEST(Fsck, MissingMainIsRestoredFromBackup)
{
    ScratchDir scratch;
    seedArchive(scratch.dir(), 2);
    std::string main = scratch.path("entry-000002.json");
    writeRaw(main + ".bak", readRaw(main));
    ASSERT_EQ(::unlink(main.c_str()), 0);

    FsckReport verify = fsckArchive(scratch.dir(), false);
    const FsckFinding *f = findingOf(verify, "missing-main");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->action, "restore from backup");

    FsckReport repair = fsckArchive(scratch.dir(), true);
    EXPECT_TRUE(repair.clean());
    EXPECT_EQ(repair.headId, 2);
    EXPECT_EQ(::access(main.c_str(), F_OK), 0);
    RunArchive ar(scratch.dir());
    EXPECT_EQ(ar.scan().entries.size(), 2u);
}

TEST(Fsck, CorruptEntryWithoutBackupIsQuarantined)
{
    ScratchDir scratch;
    seedArchive(scratch.dir(), 2);
    std::string main = scratch.path("entry-000001.json");
    writeRaw(main, "not json at all");
    writeRaw(main + ".bak", "also damaged"); // backup unusable too

    FsckReport verify = fsckArchive(scratch.dir(), false);
    const FsckFinding *f = findingOf(verify, "corrupt-entry");
    ASSERT_NE(f, nullptr);
    EXPECT_NE(f->detail.find("backup:"), std::string::npos);
    EXPECT_EQ(f->action, "quarantine");

    FsckReport repair = fsckArchive(scratch.dir(), true);
    EXPECT_TRUE(repair.clean());
    // Both damaged copies moved aside, still visible for forensics.
    EXPECT_EQ(repair.quarantinedPresent, 2);
    EXPECT_NE(::access(main.c_str(), F_OK), 0);
    EXPECT_EQ(::access((main + ".quarantine").c_str(), F_OK), 0);
    EXPECT_EQ(
        ::access((main + ".bak.quarantine").c_str(), F_OK), 0);
    // Entry 2 is untouched and HEAD.
    EXPECT_EQ(repair.headId, 2);
}

TEST(Fsck, OrphanBackupIsQuarantined)
{
    ScratchDir scratch;
    seedArchive(scratch.dir(), 1);
    std::string bak = scratch.path("entry-000005.json.bak");
    writeRaw(bak, "stale damaged backup");

    FsckReport verify = fsckArchive(scratch.dir(), false);
    ASSERT_NE(findingOf(verify, "orphan-bak"), nullptr);

    FsckReport repair = fsckArchive(scratch.dir(), true);
    EXPECT_TRUE(repair.clean());
    EXPECT_NE(::access(bak.c_str(), F_OK), 0);
    EXPECT_EQ(::access((bak + ".quarantine").c_str(), F_OK), 0);
}

TEST(Fsck, NonCanonicalNameIsRenamed)
{
    ScratchDir scratch;
    seedArchive(scratch.dir(), 1);
    // A hand-renamed (or ancient-tool) entry: valid content, sloppy
    // digit count. Its id (5) is otherwise unused.
    writeRaw(scratch.path("entry-5.json"),
             readRaw(scratch.path("entry-000001.json")));

    FsckReport verify = fsckArchive(scratch.dir(), false);
    const FsckFinding *f = findingOf(verify, "non-canonical-name");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->action, "rename to entry-000005.json");

    FsckReport repair = fsckArchive(scratch.dir(), true);
    EXPECT_TRUE(repair.clean());
    EXPECT_EQ(repair.entriesOk, 2);
    EXPECT_EQ(repair.headId, 5);
    EXPECT_EQ(
        ::access(scratch.path("entry-000005.json").c_str(), F_OK),
        0);
    RunArchive ar(scratch.dir());
    ScanResult scan = ar.scan();
    ASSERT_EQ(scan.entries.size(), 2u);
    EXPECT_EQ(scan.entries[1].id, 5);
}

TEST(Fsck, DuplicateIdIsQuarantined)
{
    ScratchDir scratch;
    seedArchive(scratch.dir(), 1);
    // entry-1.json aliases entry-000001.json's id; renaming would
    // clobber the canonical file, so fsck moves the alias aside.
    writeRaw(scratch.path("entry-1.json"),
             readRaw(scratch.path("entry-000001.json")));

    FsckReport verify = fsckArchive(scratch.dir(), false);
    const FsckFinding *f = findingOf(verify, "duplicate-id");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->action, "quarantine");

    FsckReport repair = fsckArchive(scratch.dir(), true);
    EXPECT_TRUE(repair.clean());
    EXPECT_NE(::access(scratch.path("entry-1.json").c_str(), F_OK),
              0);
    EXPECT_EQ(
        ::access(scratch.path("entry-1.json.quarantine").c_str(),
                 F_OK),
        0);
    EXPECT_EQ(repair.entriesOk, 1);
}

TEST(Fsck, FutureVersionIsANoticeLeftInPlace)
{
    ScratchDir scratch;
    seedArchive(scratch.dir(), 1);
    Json payload = Json::object();
    payload.set("schema", kArchiveEntrySchema);
    payload.set("version", 999);
    std::string p = scratch.path("entry-000002.json");
    writeStateFile(p, payload);
    std::string before = readRaw(p);

    FsckReport repair = fsckArchive(scratch.dir(), true);
    const FsckFinding *f = findingOf(repair, "future-version");
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(f->notice);
    EXPECT_EQ(f->action, "left in place");
    // Notices never make the archive unhealthy and repair never
    // touches data a newer build owns.
    EXPECT_TRUE(repair.clean());
    EXPECT_EQ(repair.defects(), 0);
    EXPECT_EQ(readRaw(p), before);
    // The future entry is scanned but not "ok for this build".
    EXPECT_EQ(repair.entriesScanned, 2);
    EXPECT_EQ(repair.entriesOk, 1);
    EXPECT_EQ(repair.headId, 1);
}

TEST(Fsck, StrayFileIsANotice)
{
    ScratchDir scratch;
    seedArchive(scratch.dir(), 1);
    writeRaw(scratch.path("notes.txt"), "lab notebook");

    FsckReport repair = fsckArchive(scratch.dir(), true);
    const FsckFinding *f = findingOf(repair, "stray-file");
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(f->notice);
    EXPECT_TRUE(repair.clean());
    EXPECT_EQ(::access(scratch.path("notes.txt").c_str(), F_OK), 0);
}

TEST(Fsck, MetricsCountersArePopulated)
{
    ScratchDir scratch;
    seedArchive(scratch.dir(), 2);
    writeRaw(scratch.path("entry-000003.json.tmp"), "torn");
    writeRaw(scratch.path("entry-000001.json"), "garbage");

    MetricsRegistry metrics;
    FsckReport repair = fsckArchive(scratch.dir(), true, &metrics);
    EXPECT_TRUE(repair.clean());
    EXPECT_EQ(metrics.counter("fsck.entries_scanned").value(), 2u);
    EXPECT_EQ(metrics.counter("fsck.entries_ok").value(), 1u);
    EXPECT_EQ(metrics.counter("fsck.defects").value(), 2u);
    EXPECT_EQ(metrics.counter("fsck.repaired").value(), 2u);
    EXPECT_EQ(metrics.counter("fsck.orphan_tmp").value(), 1u);
    EXPECT_EQ(metrics.counter("fsck.quarantined_present").value(),
              1u);
}

TEST(Fsck, JsonReportHasTheStableSchema)
{
    ScratchDir scratch;
    seedArchive(scratch.dir(), 1);
    writeRaw(scratch.path("entry-000002.json.tmp"), "torn");

    Json doc = fsckToJson(fsckArchive(scratch.dir(), false));
    EXPECT_EQ(doc.at("schema").asString(), kFsckReportSchema);
    EXPECT_EQ(doc.at("version").asInt(), kFsckReportVersion);
    EXPECT_EQ(doc.at("dir").asString(), scratch.dir());
    EXPECT_FALSE(doc.at("repair").asBool());
    EXPECT_EQ(doc.at("entries_scanned").asInt(), 1);
    EXPECT_EQ(doc.at("entries_ok").asInt(), 1);
    EXPECT_EQ(doc.at("defects").asInt(), 1);
    EXPECT_EQ(doc.at("repaired").asInt(), 0);
    EXPECT_EQ(doc.at("unrepaired").asInt(), 1);
    EXPECT_EQ(doc.at("head_id").asInt(), 1);
    ASSERT_EQ(doc.at("findings").size(), 1u);
    const Json &f = doc.at("findings").at(0);
    EXPECT_EQ(f.at("kind").asString(), "orphan-tmp");
    EXPECT_FALSE(f.at("notice").asBool());
    EXPECT_FALSE(f.at("repaired").asBool());
    EXPECT_EQ(f.at("action").asString(), "remove");
}

TEST(Fsck, RepairIsIdempotentAcrossDefectMix)
{
    ScratchDir scratch;
    seedArchive(scratch.dir(), 3);
    std::string e1 = scratch.path("entry-000001.json");
    std::string e2 = scratch.path("entry-000002.json");
    writeRaw(e1 + ".bak", readRaw(e1));
    writeRaw(e1, "torn");                               // restore
    writeRaw(e2, "garbage");                            // quarantine
    writeRaw(scratch.path("entry-000004.json.tmp"), "x"); // sweep

    FsckReport first = fsckArchive(scratch.dir(), true);
    EXPECT_TRUE(first.clean());
    EXPECT_EQ(first.repairedCount(), 3);

    // A second pass finds a healthy archive: the quarantine copies
    // are inventory, not defects.
    FsckReport second = fsckArchive(scratch.dir(), true);
    EXPECT_TRUE(second.clean());
    EXPECT_EQ(second.defects(), 0);
    EXPECT_EQ(second.repairedCount(), 0);
    EXPECT_EQ(second.entriesOk, 2);
    EXPECT_EQ(second.quarantinedPresent, 1);
    EXPECT_EQ(second.headId, 3);
}

} // namespace
} // namespace archive
} // namespace rigor
