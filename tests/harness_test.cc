/**
 * @file
 * Harness tests: runner produces the two-level design, noise model
 * statistics match configuration, analyses behave on real runs, and
 * the methodology comparison exposes naive-scheme failure modes.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "harness/analysis.hh"
#include "harness/fault.hh"
#include "harness/noise.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "stats/descriptive.hh"
#include "support/logging.hh"

namespace rigor {
namespace harness {
namespace {

RunnerConfig
smallConfig(vm::Tier tier)
{
    RunnerConfig cfg;
    cfg.invocations = 5;
    cfg.iterations = 20;
    cfg.tier = tier;
    cfg.jitThreshold = 200;
    cfg.seed = 0xabc;
    return cfg;
}

const workloads::WorkloadSpec &
testSpec(const char *name)
{
    return workloads::findWorkload(name);
}

RunnerConfig
withTestSize(RunnerConfig cfg, const char *name)
{
    cfg.size = testSpec(name).testSize;
    return cfg;
}

TEST(Noise, DisabledIsIdentity)
{
    NoiseConfig cfg;
    cfg.enabled = false;
    NoiseModel m(cfg, 42);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(m.nextIterationFactor(), 1.0);
}

TEST(Noise, BiasIsPerInvocationConstant)
{
    NoiseConfig cfg;
    cfg.withinSigma = 0.0;
    cfg.spikeProbability = 0.0;
    NoiseModel m(cfg, 7);
    double first = m.nextIterationFactor();
    for (int i = 0; i < 20; ++i)
        EXPECT_DOUBLE_EQ(m.nextIterationFactor(), first);
    EXPECT_DOUBLE_EQ(first, m.invocationBias());
}

TEST(Noise, SameSeedSameStream)
{
    NoiseConfig cfg;
    NoiseModel a(cfg, 99), b(cfg, 99);
    for (int i = 0; i < 50; ++i)
        EXPECT_DOUBLE_EQ(a.nextIterationFactor(),
                         b.nextIterationFactor());
}

TEST(Noise, BetweenSigmaControlsBiasSpread)
{
    NoiseConfig cfg;
    cfg.withinSigma = 0.0;
    cfg.spikeProbability = 0.0;
    cfg.betweenSigma = 0.05;
    std::vector<double> biases;
    for (uint64_t s = 0; s < 400; ++s)
        biases.push_back(NoiseModel(cfg, s).invocationBias());
    // Log of a lognormal(0, sigma) has stddev sigma.
    std::vector<double> logs;
    for (double b : biases)
        logs.push_back(std::log(b));
    EXPECT_NEAR(stats::stddev(logs), 0.05, 0.012);
    EXPECT_NEAR(stats::mean(logs), 0.0, 0.012);
}

TEST(Noise, SpikesAreRareAndPositive)
{
    NoiseConfig cfg;
    cfg.betweenSigma = 0.0;
    cfg.withinSigma = 0.0;
    cfg.spikeProbability = 0.05;
    cfg.spikeScale = 0.5;
    NoiseModel m(cfg, 3);
    int spikes = 0;
    for (int i = 0; i < 4000; ++i) {
        double f = m.nextIterationFactor();
        EXPECT_GE(f, 1.0);
        if (f > 1.0)
            ++spikes;
    }
    EXPECT_NEAR(spikes, 200, 70);
}

TEST(Runner, ProducesRequestedDesign)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Interp), "sieve");
    RunResult run = runExperiment("sieve", cfg);
    EXPECT_EQ(run.workload, "sieve");
    ASSERT_EQ(run.invocations.size(), 5u);
    for (const auto &inv : run.invocations) {
        EXPECT_EQ(inv.samples.size(), 20u);
        for (const auto &s : inv.samples) {
            EXPECT_GT(s.timeMs, 0.0);
            EXPECT_GT(s.simCycles, 0u);
            EXPECT_GT(s.counters.instructions, 0u);
        }
    }
}

TEST(Runner, ChecksumsAgreeAcrossInvocations)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Interp), "queens");
    RunResult run = runExperiment("queens", cfg);
    for (const auto &inv : run.invocations)
        EXPECT_EQ(inv.checksum, run.invocations[0].checksum);
}

TEST(Runner, DeterministicGivenSeed)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Interp), "sieve");
    RunResult a = runExperiment("sieve", cfg);
    RunResult b = runExperiment("sieve", cfg);
    ASSERT_EQ(a.invocations.size(), b.invocations.size());
    for (size_t i = 0; i < a.invocations.size(); ++i) {
        auto ta = a.invocations[i].times();
        auto tb = b.invocations[i].times();
        ASSERT_EQ(ta.size(), tb.size());
        for (size_t j = 0; j < ta.size(); ++j)
            EXPECT_DOUBLE_EQ(ta[j], tb[j]);
    }
}

TEST(Runner, DifferentSeedsGiveDifferentNoise)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Interp), "sieve");
    RunResult a = runExperiment("sieve", cfg);
    cfg.seed = 0xdef;
    RunResult b = runExperiment("sieve", cfg);
    EXPECT_NE(a.invocations[0].times()[0],
              b.invocations[0].times()[0]);
}

TEST(Runner, AdaptiveTierIsFasterAtSteadyState)
{
    auto interp_cfg =
        withTestSize(smallConfig(vm::Tier::Interp), "sieve");
    auto jit_cfg =
        withTestSize(smallConfig(vm::Tier::Adaptive), "sieve");
    jit_cfg.jitThreshold = 50;
    RunResult interp = runExperiment("sieve", interp_cfg);
    RunResult jit = runExperiment("sieve", jit_cfg);
    auto speedup = rigorousSpeedup(interp, jit);
    EXPECT_GT(speedup.ci.estimate, 1.3);
    EXPECT_TRUE(speedup.significant);
}

TEST(Runner, JitWarmupVisibleInSeries)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Adaptive), "sieve");
    cfg.iterations = 30;
    cfg.noise.enabled = false;
    // Threshold chosen so compilation lands a few iterations in.
    cfg.jitThreshold = 400;
    RunResult run = runExperiment("sieve", cfg);
    for (const auto &inv : run.invocations) {
        auto times = inv.times();
        double early = times[0];
        double late = times[times.size() - 1];
        EXPECT_GT(early, late * 1.2)
            << "warmup should make early iterations slower";
    }
}

TEST(Analysis, SteadyStateSummaryOnRealRun)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Adaptive), "sieve");
    cfg.jitThreshold = 400;
    cfg.noise.enabled = false;
    RunResult run = runExperiment("sieve", cfg);
    auto summary = analyzeSteadyState(run);
    EXPECT_EQ(summary.perInvocation.size(), 5u);
    EXPECT_GE(summary.warmup, 3);
    EXPECT_DOUBLE_EQ(summary.steadyFraction(), 1.0);
    EXPECT_GT(summary.meanSteadyStart, 0.0);
}

TEST(Analysis, RigorousEstimateExcludesWarmup)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Adaptive), "sieve");
    cfg.jitThreshold = 400;
    cfg.noise.enabled = false;
    RunResult run = runExperiment("sieve", cfg);
    auto est = rigorousEstimate(run);
    // The rigorous estimate should be close to the final-iteration
    // time, not inflated by warmup iterations.
    double last = run.invocations[0].times().back();
    EXPECT_LT(est.ci.estimate, last * 1.15);
    // The naive first-iteration estimate is much larger.
    double naive =
        pointEstimate(run, Methodology::NaiveFirstIteration);
    EXPECT_GT(naive, est.ci.estimate * 1.2);
}

TEST(Analysis, MethodologiesDisagreeOnWarmupRuns)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Adaptive), "sieve");
    cfg.jitThreshold = 400;
    RunResult run = runExperiment("sieve", cfg);
    double rigorous =
        pointEstimate(run, Methodology::RigorousMeanOfMeans);
    double best = pointEstimate(run, Methodology::NaiveBestOfAll);
    double first =
        pointEstimate(run, Methodology::NaiveFirstIteration);
    EXPECT_LT(best, rigorous);   // best-of cherry-picks
    EXPECT_GT(first, rigorous);  // first iteration pays warmup
}

TEST(Analysis, PooledIntervalNarrowerThanRigorous)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Interp), "sieve");
    cfg.noise.betweenSigma = 0.05;  // strong invocation effects
    cfg.invocations = 8;
    RunResult run = runExperiment("sieve", cfg);
    auto rigorous =
        intervalEstimate(run, Methodology::RigorousMeanOfMeans);
    auto pooled = intervalEstimate(run, Methodology::NaivePooled);
    EXPECT_GT(rigorous.halfWidth(), pooled.halfWidth());
}

TEST(Analysis, VarianceDecompositionSeesInjectedBias)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Interp), "sieve");
    cfg.invocations = 10;
    cfg.iterations = 15;
    cfg.noise.betweenSigma = 0.08;
    cfg.noise.withinSigma = 0.01;
    cfg.noise.spikeProbability = 0.0;
    RunResult run = runExperiment("sieve", cfg);
    auto vc = varianceDecomposition(run);
    // Between-invocation CoV should dominate and be near 8%.
    EXPECT_GT(vc.betweenCoV, 0.03);
    EXPECT_GT(vc.intraclassCorrelation(), 0.5);
}

TEST(Analysis, GeomeanSpeedupAggregates)
{
    SpeedupResult a, b;
    a.ci = {2.0, 1.8, 2.2, 0.95};
    b.ci = {8.0, 7.5, 8.5, 0.95};
    auto g = geomeanSpeedup({a, b});
    EXPECT_NEAR(g.estimate, 4.0, 1e-9);
}

TEST(Analysis, MethodologyNamesAreUnique)
{
    std::vector<std::string> names;
    for (auto m : allMethodologies())
        names.push_back(methodologyName(m));
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
    EXPECT_EQ(names.size(), 6u);
}

TEST(Report, FormatCi)
{
    stats::ConfidenceInterval ci{1.234, 1.1, 1.4, 0.95};
    EXPECT_EQ(formatCi(ci, 2), "1.23 [1.10, 1.40]");
    EXPECT_NE(formatCiPercent(ci, 2).find("±"), std::string::npos);
}

TEST(Report, AsciiSeriesAndSparkline)
{
    std::vector<double> vals = {5, 4, 3, 2, 1, 1, 1, 1};
    std::string chart = asciiSeries(vals, 4, 40);
    EXPECT_NE(chart.find("#"), std::string::npos);
    EXPECT_NE(chart.find("min="), std::string::npos);
    EXPECT_FALSE(sparkline(vals).empty());
    EXPECT_EQ(asciiSeries({}, 4, 10), "(empty series)\n");
}

TEST(Report, CsvAndJsonExports)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Interp), "queens");
    cfg.invocations = 2;
    cfg.iterations = 3;
    RunResult run = runExperiment("queens", cfg);

    std::ostringstream os;
    writeSeriesCsv(os, run);
    std::string csv = os.str();
    // Schema comment + header + 2*3 rows.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 8);
    EXPECT_EQ(csv.rfind("# schema=rigorbench-series version=1\n", 0),
              0u);
    EXPECT_NE(csv.find("queens,interp,0,0"), std::string::npos);

    Json j = runToJson(run);
    EXPECT_EQ(j.at("workload").asString(), "queens");
    EXPECT_EQ(j.at("schema").asString(), "rigorbench-run");
    EXPECT_EQ(j.at("version").asInt(), 1);
    EXPECT_EQ(j.at("invocations").size(), 2u);
    EXPECT_EQ(j.at("invocations").at(0).at("times_ms").size(), 3u);
    // Round-trips through the parser.
    Json parsed = Json::parse(j.dump(2));
    EXPECT_EQ(parsed.at("size").asInt(), run.size);
}

TEST(Report, RunFromJsonRejectsForeignSchema)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Interp), "queens");
    cfg.invocations = 1;
    cfg.iterations = 2;
    RunResult run = runExperiment("queens", cfg);

    // A matching schema round-trips.
    Json ok = runToJson(run);
    EXPECT_EQ(runFromJson(ok).workload, "queens");

    // A different schema string is rejected loudly.
    Json wrong = runToJson(run);
    wrong.set("schema", "someone-elses-format");
    EXPECT_THROW(runFromJson(wrong), FatalError);

    // A future version of our own schema is rejected too.
    Json future = runToJson(run);
    future.set("version", static_cast<int64_t>(999));
    EXPECT_THROW(runFromJson(future), FatalError);

    // Schema-less documents (pre-schema artifacts) still load.
    Json legacy = runToJson(run);
    legacy.erase("schema");
    legacy.erase("version");
    EXPECT_EQ(runFromJson(legacy).workload, "queens");
}

TEST(RunResultTest, AggregationHelpers)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Interp), "queens");
    cfg.invocations = 2;
    cfg.iterations = 2;
    RunResult run = runExperiment("queens", cfg);
    auto series = run.series();
    ASSERT_EQ(series.size(), 2u);
    EXPECT_EQ(series[0].size(), 2u);
    auto total = run.totalCounters();
    EXPECT_GT(total.instructions, 0u);
    auto mix = run.opMix();
    EXPECT_EQ(mix.size(),
              static_cast<size_t>(vm::Op::NumOpcodes));
    uint64_t sum = 0;
    for (uint64_t c : mix)
        sum += c;
    EXPECT_GT(sum, 0u);
}


TEST(Analysis, CompareRuntimesRanksAndTies)
{
    auto base = withTestSize(smallConfig(vm::Tier::Interp), "sieve");
    base.invocations = 6;
    RunResult slow = runExperiment("sieve", base);
    // A statistically identical twin (different seed, same design).
    auto twin_cfg = base;
    twin_cfg.seed = 0x999;
    RunResult twin = runExperiment("sieve", twin_cfg);
    // A clearly faster run (adaptive tier).
    auto fast_cfg = withTestSize(smallConfig(vm::Tier::Adaptive),
                                 "sieve");
    fast_cfg.invocations = 6;
    fast_cfg.jitThreshold = 50;
    RunResult fast = runExperiment("sieve", fast_cfg);

    auto cmp = compareRuntimes({&slow, &twin, &fast});
    ASSERT_EQ(cmp.rank.size(), 3u);
    // The twins tie; the adaptive run ranks first.
    EXPECT_EQ(cmp.rank[0], cmp.rank[1]);
    EXPECT_EQ(cmp.rank[2], 1);
    EXPECT_GT(cmp.rank[0], 1);
    // Pairwise matrix: fast vs slow significant, twins not.
    EXPECT_TRUE(cmp.speedup[0][2].significant);
    EXPECT_FALSE(cmp.speedup[0][1].significant);
    // Diagonal is the identity comparison.
    EXPECT_DOUBLE_EQ(cmp.speedup[1][1].ci.estimate, 1.0);
    EXPECT_THROW(compareRuntimes({&slow}), rigor::PanicError);
}


TEST(Report, JsonRoundTripPreservesAnalysis)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Adaptive), "sieve");
    cfg.invocations = 4;
    cfg.iterations = 8;
    RunResult original = runExperiment("sieve", cfg);

    Json doc = Json::parse(runToJson(original).dump(2));
    RunResult restored = runFromJson(doc);

    EXPECT_EQ(restored.workload, original.workload);
    EXPECT_EQ(restored.tier, original.tier);
    EXPECT_EQ(restored.size, original.size);
    ASSERT_EQ(restored.invocations.size(),
              original.invocations.size());
    for (size_t i = 0; i < original.invocations.size(); ++i) {
        EXPECT_EQ(restored.invocations[i].checksum,
                  original.invocations[i].checksum);
        auto a = original.invocations[i].times();
        auto b = restored.invocations[i].times();
        ASSERT_EQ(a.size(), b.size());
        for (size_t j = 0; j < a.size(); ++j)
            EXPECT_DOUBLE_EQ(a[j], b[j]);
    }
    // The rigorous analysis gives identical results on both.
    auto est_a = rigorousEstimate(original);
    auto est_b = rigorousEstimate(restored);
    EXPECT_DOUBLE_EQ(est_a.ci.estimate, est_b.ci.estimate);
    EXPECT_DOUBLE_EQ(est_a.ci.lower, est_b.ci.lower);
}

TEST(Runner, RetrySucceedsAndEstimateMatchesClean)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Interp), "sieve");
    RunResult clean = runExperiment("sieve", cfg);
    auto clean_est = rigorousEstimate(clean);

    // A single checksum corruption on invocation 1's first attempt:
    // detected, the attempt is discarded and retried under a fresh
    // derived seed.
    FaultPlan plan;
    plan.add("checksum:inv=1:n=1");
    FaultInjector inj(std::move(plan), cfg.seed);
    auto faulted_cfg = cfg;
    faulted_cfg.faults = &inj;
    faulted_cfg.maxRetries = 2;
    RunResult faulted = runExperiment("sieve", faulted_cfg);

    // No PanicError; the divergence is recorded instead.
    ASSERT_EQ(faulted.failures.size(), 1u);
    EXPECT_EQ(faulted.failures[0].kind,
              FailureKind::ChecksumMismatch);
    ASSERT_EQ(faulted.invocations.size(), 5u);

    // The failed attempt is excluded from the estimate: only the 5
    // successful invocations contribute, and all but the retried one
    // are bit-identical to the clean run's.
    auto est = rigorousEstimate(faulted);
    EXPECT_EQ(est.invocationMeans.size(), 5u);
    for (size_t i : {0u, 2u, 3u, 4u})
        EXPECT_EQ(faulted.invocations[i].invocationSeed,
                  clean.invocations[i].invocationSeed);
    // Invocation 1 re-ran with different (known-model) noise, so the
    // estimates agree statistically rather than bit for bit.
    EXPECT_NEAR(est.ci.estimate, clean_est.ci.estimate,
                0.03 * clean_est.ci.estimate);
    EXPECT_TRUE(est.ci.overlaps(clean_est.ci));
}

TEST(Report, JsonRoundTripWithFailures)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Interp), "sieve");
    cfg.invocations = 3;
    cfg.iterations = 5;
    FaultPlan plan;
    plan.add("throw:inv=1:n=1");
    FaultInjector inj(std::move(plan), cfg.seed);
    cfg.faults = &inj;
    RunResult run = runExperiment("sieve", cfg);
    ASSERT_EQ(run.failures.size(), 1u);

    Json doc = Json::parse(runToJson(run).dump(2));
    RunResult restored = runFromJson(doc);
    ASSERT_EQ(restored.failures.size(), 1u);
    EXPECT_EQ(restored.failures[0].kind, run.failures[0].kind);
    EXPECT_EQ(restored.failures[0].invocation,
              run.failures[0].invocation);
    EXPECT_EQ(restored.failures[0].seed, run.failures[0].seed);
    EXPECT_EQ(restored.failures[0].message, run.failures[0].message);
    EXPECT_EQ(restored.invocationsAttempted, 3);
    EXPECT_FALSE(restored.quarantined);
}

TEST(Report, CleanRunJsonHasNoFailureFields)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Interp), "queens");
    cfg.invocations = 2;
    cfg.iterations = 3;
    RunResult run = runExperiment("queens", cfg);
    Json doc = runToJson(run);
    // Dumps of clean runs stay byte-compatible with pre-fault-
    // tolerance archives: no failure keys are emitted.
    EXPECT_FALSE(doc.has("failures"));
    EXPECT_FALSE(doc.has("quarantined"));
    EXPECT_FALSE(doc.has("invocations_attempted"));
}

TEST(Report, QuarantinedRunRoundTrips)
{
    auto cfg = withTestSize(smallConfig(vm::Tier::Interp), "sieve");
    cfg.maxRetries = 0;
    cfg.quarantineAfter = 2;
    FaultPlan plan;
    plan.add("throw:n=99");
    FaultInjector inj(std::move(plan), cfg.seed);
    cfg.faults = &inj;
    RunResult run = runExperiment("sieve", cfg);
    ASSERT_TRUE(run.quarantined);
    ASSERT_TRUE(run.invocations.empty());

    Json doc = Json::parse(runToJson(run).dump(2));
    RunResult restored = runFromJson(doc);
    EXPECT_TRUE(restored.quarantined);
    EXPECT_EQ(restored.quarantineReason, run.quarantineReason);
    EXPECT_EQ(restored.failures.size(), run.failures.size());
    EXPECT_EQ(restored.invocationsAttempted,
              run.invocationsAttempted);
}

TEST(Report, JsonFromMalformedDocumentsFails)
{
    Json bad = Json::object();
    EXPECT_THROW(runFromJson(bad), rigor::PanicError);
    bad.set("workload", "x");
    bad.set("tier", "warp-drive");
    bad.set("size", 1);
    bad.set("invocations", Json::array());
    EXPECT_THROW(runFromJson(bad), rigor::FatalError);
    bad.set("tier", "interp");
    EXPECT_THROW(runFromJson(bad), rigor::FatalError);  // empty invs
}

} // namespace
} // namespace harness
} // namespace rigor
