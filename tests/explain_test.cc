/**
 * @file
 * Differential-profiling tests: behavior-profile round-trips and
 * accounting invariants on real runs, golden attribution values on
 * hand-built profiles, byte-identity of explain reports across
 * repeats and --jobs values, loud degradation on profile-less
 * (legacy v1) entries, and the gate's worst-regression-first order.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "archive/archive.hh"
#include "compare/compare.hh"
#include "explain/behavior_profile.hh"
#include "explain/explain.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "support/durable_io.hh"
#include "support/fingerprint.hh"
#include "support/logging.hh"
#include "support/schema.hh"
#include "workloads/workloads.hh"

namespace rigor {
namespace explain {
namespace {

/** Fresh scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    ScratchDir()
    {
        char tmpl[] = "/tmp/rigor_explain_XXXXXX";
        const char *d = ::mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        dir_ = d ? d : ".";
    }

    ~ScratchDir()
    {
        std::string cmd = "rm -rf '" + dir_ + "'";
        int rc = std::system(cmd.c_str());
        (void)rc;
    }

    const std::string &dir() const { return dir_; }

    std::string path(const std::string &name) const
    {
        return dir_ + "/" + name;
    }

  private:
    std::string dir_;
};

/** Small real experiment on the named workload. */
harness::RunnerConfig
smallConfig(vm::Tier tier, const char *workload)
{
    harness::RunnerConfig cfg;
    cfg.invocations = 3;
    cfg.iterations = 8;
    cfg.tier = tier;
    cfg.jitThreshold = 200;
    cfg.seed = 0xabc;
    cfg.size = workloads::findWorkload(workload).testSize;
    return cfg;
}

/** Fabricated run with perfectly flat times: mean-of-means = baseMs. */
harness::RunResult
makeFlatRun(const std::string &workload, vm::Tier tier,
            double baseMs, int invocations = 2, int iterations = 5)
{
    harness::RunResult run;
    run.workload = workload;
    run.tier = tier;
    run.size = 10;
    for (int inv = 0; inv < invocations; ++inv) {
        harness::InvocationResult ir;
        ir.invocationSeed = 100 + inv;
        for (int it = 0; it < iterations; ++it) {
            harness::IterationSample s;
            s.timeMs = baseMs;
            ir.samples.push_back(s);
        }
        run.invocations.push_back(ir);
    }
    run.invocationsAttempted = invocations;
    return run;
}

archive::Entry
makeEntry(int id, const std::string &fingerprint,
          std::vector<harness::RunResult> runs,
          std::vector<Json> profiles = {})
{
    archive::Entry e;
    e.summary.id = id;
    e.summary.fingerprint = fingerprint;
    e.summary.command = "run";
    e.summary.runCount = static_cast<int>(runs.size());
    e.config = Json::object();
    e.runs = std::move(runs);
    e.profiles = std::move(profiles);
    return e;
}

TEST(Profile, RoundTripPreservesEveryField)
{
    auto cfg = smallConfig(vm::Tier::Adaptive, "sieve");
    harness::RunResult run = harness::runExperiment("sieve", cfg);
    BehaviorProfile p = buildProfile(run, cfg);

    BehaviorProfile q = profileFromJson(profileToJson(p));
    EXPECT_EQ(q.workload, p.workload);
    EXPECT_EQ(q.tier, p.tier);
    EXPECT_EQ(q.invocations, p.invocations);
    EXPECT_EQ(q.iterations, p.iterations);
    EXPECT_EQ(q.vm.bytecodes, p.vm.bytecodes);
    EXPECT_EQ(q.vm.uops, p.vm.uops);
    EXPECT_EQ(q.vm.guardFailures, p.vm.guardFailures);
    EXPECT_EQ(q.vm.jitCompiles, p.vm.jitCompiles);
    EXPECT_EQ(q.vm.jitCompileUops, p.vm.jitCompileUops);
    ASSERT_EQ(q.ops.size(), p.ops.size());
    for (size_t i = 0; i < p.ops.size(); ++i) {
        EXPECT_EQ(q.ops[i].op, p.ops[i].op);
        EXPECT_EQ(q.ops[i].count, p.ops[i].count);
        EXPECT_EQ(q.ops[i].uops, p.ops[i].uops);
        EXPECT_EQ(q.ops[i].dispatched, p.ops[i].dispatched);
        EXPECT_EQ(q.ops[i].guardFailures, p.ops[i].guardFailures);
    }
    EXPECT_EQ(q.counters.instructions, p.counters.instructions);
    EXPECT_EQ(q.counters.l1dMisses, p.counters.l1dMisses);
    EXPECT_DOUBLE_EQ(q.model.issueWidth, p.model.issueWidth);
    EXPECT_DOUBLE_EQ(q.model.cyclesPerMs, p.model.cyclesPerMs);
    // Serializing the parsed profile again must be byte-identical:
    // the round-trip loses nothing the attribution arithmetic uses.
    EXPECT_EQ(profileToJson(q).dump(2), profileToJson(p).dump(2));
}

TEST(Profile, PerOpAccountingSumsToVmTotals)
{
    // The per-opcode breakdown must tile the VM totals exactly:
    // uops = per-op uops (dispatch overhead included) + JIT-compile
    // uops, and the same for dynamic counts and guard failures. A
    // JIT-active adaptive run exercises all three terms.
    auto cfg = smallConfig(vm::Tier::Adaptive, "richards");
    harness::RunResult run = harness::runExperiment("richards", cfg);
    BehaviorProfile p = buildProfile(run, cfg);
    ASSERT_GT(p.vm.jitCompiles, 0u);

    uint64_t count = 0, uops = 0, dispatched = 0, guards = 0;
    for (const auto &op : p.ops) {
        count += op.count;
        uops += op.uops;
        dispatched += op.dispatched;
        guards += op.guardFailures;
        EXPECT_LE(op.dispatched, op.count) << op.op;
    }
    EXPECT_EQ(count, p.vm.bytecodes);
    EXPECT_EQ(uops + p.vm.jitCompileUops, p.vm.uops);
    EXPECT_EQ(guards, p.vm.guardFailures);
    // The JIT ran, so part of the execution skipped dispatch.
    EXPECT_LT(dispatched, count);
}

TEST(Profile, PureFunctionOfTheRun)
{
    auto cfg = smallConfig(vm::Tier::Adaptive, "sieve");
    harness::RunResult run = harness::runExperiment("sieve", cfg);
    std::string a = profileToJson(buildProfile(run, cfg)).dump(2);
    std::string b = profileToJson(buildProfile(run, cfg)).dump(2);
    EXPECT_EQ(a, b);
}

TEST(Profile, ByteIdenticalAcrossJobs)
{
    // RunResults commit in invocation order regardless of --jobs, so
    // the profile built from them must not differ by a byte either.
    auto cfg1 = smallConfig(vm::Tier::Adaptive, "sieve");
    cfg1.jobs = 1;
    auto cfg4 = cfg1;
    cfg4.jobs = 4;
    harness::RunResult r1 = harness::runExperiment("sieve", cfg1);
    harness::RunResult r4 = harness::runExperiment("sieve", cfg4);
    EXPECT_EQ(profileToJson(buildProfile(r1, cfg1)).dump(2),
              profileToJson(buildProfile(r4, cfg4)).dump(2));
}

/** Hand-built profile with clean numbers for golden attribution. */
BehaviorProfile
goldenProfile(uint64_t instructions, uint64_t guardFailures,
              uint64_t branchMisses, uint64_t l1dMisses)
{
    BehaviorProfile p;
    p.workload = "sieve";
    p.tier = vm::tierName(vm::Tier::Interp);
    p.invocations = 2;
    p.iterations = 10;
    p.vm.guardFailures = guardFailures;
    p.counters.instructions = instructions;
    p.counters.branchMisses = branchMisses;
    p.counters.l1dAccesses = 1000000;
    p.counters.l1dMisses = l1dMisses;
    p.model.issueWidth = 4.0;
    p.model.branchMissPenalty = 14;
    p.model.dispatchMissPenalty = 18;
    p.model.memOverlapFactor = 0.45;
    p.model.l1iMissPenalty = 10;
    p.model.l2HitCycles = 12;
    p.model.llcHitCycles = 40;
    p.model.dramCycles = 180;
    p.model.cyclesPerMs = 1.0e6;
    return p;
}

TEST(Explain, GoldenAttributionOnHandBuiltProfiles)
{
    // Anchor: baseline 1.0 ms at 1e6 cycles/ms = 1e6 cycles/iter.
    //   opcode-mix: (4.4e6 - 4.0e6)/4 / 10 iters = 10,000 cyc/iter
    //               -> +1.00% of the anchor
    //   tier/deopt: 10,000 guards * 14 / 10 = 14,000 -> +1.40%
    //   branch:     5,000 misses * 14 / 10 =  7,000 -> +0.70%
    //   cache:      0.45 * 1,000 L2 hits * 12 / 10 =   540 -> +0.054%
    //   measured:   1.08/1.00 - 1 = +8.00%
    //   unattributed = 8.00 - 3.154 = +4.846%
    auto baseRun = makeFlatRun("sieve", vm::Tier::Interp, 1.0);
    auto candRun = makeFlatRun("sieve", vm::Tier::Interp, 1.08);
    auto pa = goldenProfile(4000000, 0, 0, 0);
    auto pb = goldenProfile(4400000, 10000, 5000, 1000);
    auto base =
        makeEntry(1, "fp-a", {baseRun}, {profileToJson(pa)});
    auto cand =
        makeEntry(2, "fp-b", {candRun}, {profileToJson(pb)});

    compare::CompareConfig cc;
    auto report = compare::compareEntries(base, cand, cc);
    auto ex = explainEntries(base, cand, report);
    ASSERT_EQ(ex.pairs.size(), 1u);
    const PairExplanation &pe = ex.pairs[0];
    ASSERT_TRUE(pe.hasProfiles);
    EXPECT_NEAR(pe.measuredPct, 8.0, 1e-9);

    ASSERT_EQ(pe.components.size(), 4u);
    // Ranked by |contribution|: tier/deopt, opcode-mix, branch, cache.
    EXPECT_EQ(pe.components[0].name, "tier/deopt");
    EXPECT_NEAR(pe.components[0].contributionPct, 1.40, 1e-9);
    EXPECT_EQ(pe.components[1].name, "opcode-mix");
    EXPECT_NEAR(pe.components[1].contributionPct, 1.00, 1e-9);
    EXPECT_EQ(pe.components[2].name, "branch");
    EXPECT_NEAR(pe.components[2].contributionPct, 0.70, 1e-9);
    EXPECT_EQ(pe.components[3].name, "cache");
    EXPECT_NEAR(pe.components[3].contributionPct, 0.054, 1e-9);
    EXPECT_NEAR(pe.unattributedPct, 4.846, 1e-9);

    // The identity the report promises: components + remainder =
    // measured change, exactly (same denominator throughout).
    double sum = pe.unattributedPct;
    for (const auto &c : pe.components)
        sum += c.contributionPct;
    EXPECT_NEAR(sum, pe.measuredPct, 1e-12);

    // The rendered section must carry the ranked headline.
    std::string md = renderPair(pe);
    EXPECT_NE(md.find("tier/deopt +1.40%"), std::string::npos) << md;
    EXPECT_NE(md.find("unattributed +4.85%"), std::string::npos)
        << md;
    EXPECT_NE(md.find("8.0% slower"), std::string::npos) << md;
}

TEST(Explain, ReportByteIdenticalAcrossRepeats)
{
    auto cfgBase = smallConfig(vm::Tier::Adaptive, "sieve");
    auto cfgCand = cfgBase;
    cfgCand.jitThreshold = 100000000; // de-JIT: a real regression
    harness::RunResult rb = harness::runExperiment("sieve", cfgBase);
    harness::RunResult rc = harness::runExperiment("sieve", cfgCand);
    auto base = makeEntry(
        1, "fp-a", {rb},
        {profileToJson(buildProfile(rb, cfgBase))});
    auto cand = makeEntry(
        2, "fp-b", {rc},
        {profileToJson(buildProfile(rc, cfgCand))});

    compare::CompareConfig cc;
    auto report1 = compare::compareEntries(base, cand, cc);
    auto report2 = compare::compareEntries(base, cand, cc);
    std::string j1 =
        reportToJson(explainEntries(base, cand, report1)).dump(2);
    std::string j2 =
        reportToJson(explainEntries(base, cand, report2)).dump(2);
    EXPECT_EQ(j1, j2);
    std::string m1 = renderMarkdown(explainEntries(base, cand,
                                                   report1));
    std::string m2 = renderMarkdown(explainEntries(base, cand,
                                                   report2));
    EXPECT_EQ(m1, m2);
}

TEST(Explain, LegacyEntryWithoutProfilesDegradesLoudly)
{
    auto baseRun = makeFlatRun("sieve", vm::Tier::Interp, 1.0);
    auto candRun = makeFlatRun("sieve", vm::Tier::Interp, 1.1);
    auto pa = goldenProfile(4000000, 0, 0, 0);
    // Baseline carries a profile; the candidate is a legacy entry.
    auto base =
        makeEntry(1, "fp-a", {baseRun}, {profileToJson(pa)});
    auto cand = makeEntry(2, "fp-b", {candRun});

    compare::CompareConfig cc;
    auto report = compare::compareEntries(base, cand, cc);
    auto ex = explainEntries(base, cand, report);
    ASSERT_EQ(ex.pairs.size(), 1u);
    EXPECT_FALSE(ex.pairs[0].hasProfiles);
    EXPECT_NE(ex.pairs[0].note.find("NO PROFILE CAPTURED"),
              std::string::npos);
    EXPECT_NE(ex.pairs[0].note.find("candidate entry #2"),
              std::string::npos);
    // The measured change is still reported; only attribution is
    // (loudly) unavailable.
    EXPECT_NEAR(ex.pairs[0].measuredPct, 10.0, 1e-9);
    std::string md = renderMarkdown(ex);
    EXPECT_NE(md.find("NO PROFILE CAPTURED"), std::string::npos);
    EXPECT_NE(md.find("unexplained (no profile captured)"),
              std::string::npos);

    Json j = reportToJson(ex);
    EXPECT_FALSE(
        j.at("pairs").at(size_t{0}).at("has_profiles").asBool());
}

TEST(Explain, FindPairLocatesByWorkloadAndTier)
{
    ExplainReport r;
    PairExplanation a;
    a.workload = "sieve";
    a.tier = "interp";
    r.pairs.push_back(a);
    EXPECT_NE(findPair(r, "sieve", "interp"), nullptr);
    EXPECT_EQ(findPair(r, "sieve", "jit"), nullptr);
    EXPECT_EQ(findPair(r, "queens", "interp"), nullptr);
}

TEST(Archive, ProfilesRoundTripAlignedWithRuns)
{
    ScratchDir scratch;
    archive::RunArchive ar(scratch.dir());
    auto cfg = smallConfig(vm::Tier::Interp, "sieve");
    harness::RunResult run = harness::runExperiment("sieve", cfg);
    Json profile = profileToJson(buildProfile(run, cfg));

    Json config = Json::object();
    config.set("seed", "0xabc");
    ar.append(config, "with", "run", {run}, {profile});
    ar.append(config, "without", "run", {run});

    archive::ScanResult scan = ar.scan();
    ASSERT_EQ(scan.entries.size(), 2u);
    EXPECT_EQ(scan.entries[0].profileCount, 1);
    EXPECT_EQ(scan.entries[1].profileCount, 0);
    EXPECT_GT(scan.entries[0].sizeBytes, 0u);
    // The profiled entry is strictly larger on disk.
    EXPECT_GT(scan.entries[0].sizeBytes, scan.entries[1].sizeBytes);

    archive::Entry with = ar.load(scan.entries[0]);
    ASSERT_EQ(with.profiles.size(), 1u);
    EXPECT_FALSE(with.profiles[0].isNull());
    BehaviorProfile p = profileFromJson(with.profiles[0]);
    EXPECT_EQ(p.workload, "sieve");

    archive::Entry without = ar.load(scan.entries[1]);
    EXPECT_TRUE(without.profiles.empty());
}

TEST(Archive, MisalignedProfilesAreRejected)
{
    ScratchDir scratch;
    archive::RunArchive ar(scratch.dir());
    auto run = makeFlatRun("sieve", vm::Tier::Interp, 1.0);
    Json config = Json::object();
    EXPECT_THROW(ar.append(config, "", "run", {run},
                           {Json(), Json()}),
                 FatalError);
}

TEST(Archive, LegacyV1EntryStillLoads)
{
    // A v1 entry written by the previous archive format: no
    // "profiles" array at all. It must scan (profile count 0) and
    // load (empty profiles) without complaint — explain handles the
    // degradation, the archive layer must not reject history.
    ScratchDir scratch;
    Json config = Json::object();
    config.set("seed", "0xabc");
    Json payload = Json::object();
    payload.set("schema", kArchiveEntrySchema);
    payload.set("version", static_cast<int64_t>(1));
    payload.set("fingerprint", fingerprintJson(config));
    payload.set("command", "run");
    payload.set("config", config);
    Json rs = Json::array();
    rs.push(harness::runToJson(
        makeFlatRun("sieve", vm::Tier::Interp, 1.0)));
    payload.set("runs", std::move(rs));
    writeStateFile(scratch.path("entry-000001.json"), payload);

    archive::RunArchive ar(scratch.dir());
    archive::ScanResult scan = ar.scan();
    ASSERT_EQ(scan.entries.size(), 1u);
    EXPECT_TRUE(scan.quarantined.empty());
    EXPECT_EQ(scan.entries[0].profileCount, 0);
    archive::Entry e = ar.load(scan.entries[0]);
    ASSERT_EQ(e.runs.size(), 1u);
    EXPECT_TRUE(e.profiles.empty());
}

TEST(Archive, FutureEntryVersionIsSkippedInPlace)
{
    ScratchDir scratch;
    Json config = Json::object();
    Json payload = Json::object();
    payload.set("schema", kArchiveEntrySchema);
    payload.set("version",
                static_cast<int64_t>(kArchiveEntryVersion + 1));
    payload.set("fingerprint", fingerprintJson(config));
    payload.set("command", "run");
    payload.set("config", config);
    payload.set("runs", Json::array());
    std::string path = scratch.path("entry-000001.json");
    writeStateFile(path, payload);

    archive::RunArchive ar(scratch.dir());
    // The healthy-but-newer entry is not damage: the scan skips it
    // with a warning and leaves the newer build's data untouched.
    archive::ScanResult scan = ar.scan();
    EXPECT_TRUE(scan.entries.empty());
    EXPECT_TRUE(scan.quarantined.empty());
    EXPECT_EQ(::access(path.c_str(), F_OK), 0);
}

TEST(Gate, RegressionsOrderedWorstFirst)
{
    // Two regressed pairs of very different magnitude; the gate must
    // lead with the worst one regardless of alphabetical order.
    auto base = makeEntry(1, "fp",
                          {makeFlatRun("aaa", vm::Tier::Interp, 1.0),
                           makeFlatRun("zzz", vm::Tier::Interp, 1.0)});
    auto cand = makeEntry(2, "fp",
                          {makeFlatRun("aaa", vm::Tier::Interp, 1.2),
                           makeFlatRun("zzz", vm::Tier::Interp, 1.5)});
    compare::CompareConfig cc;
    auto report = compare::compareEntries(base, cand, cc);
    auto gate = compare::evaluateGate(report, 5.0);
    ASSERT_FALSE(gate.pass);
    ASSERT_EQ(gate.regressions.size(), 2u);
    EXPECT_EQ(gate.regressions[0].workload, "zzz");
    EXPECT_EQ(gate.regressions[1].workload, "aaa");
    EXPECT_GT(gate.regressions[0].slowdownPct,
              gate.regressions[1].slowdownPct);
    // The one-line summary names the worst pair with its tier.
    std::string txt = compare::renderGate(gate, report);
    EXPECT_NE(txt.find("worst: zzz/interp"), std::string::npos)
        << txt;
}

} // namespace
} // namespace explain
} // namespace rigor
