/**
 * @file
 * Tests for the durable I/O layer: CRC-32 against known vectors,
 * atomic whole-file replacement, the checksummed/versioned state
 * envelope, backup rotation, and corruption recovery (truncated,
 * checksum-mismatched and version-mismatched files must fall back to
 * the .bak copy, and fail loudly when no copy is usable).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include <unistd.h>

#include "support/durable_io.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace rigor {
namespace {

/** Fresh scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    ScratchDir()
    {
        char tmpl[] = "/tmp/rigor_durable_XXXXXX";
        const char *d = ::mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        dir_ = d ? d : ".";
    }

    ~ScratchDir()
    {
        std::string cmd = "rm -rf '" + dir_ + "'";
        int rc = std::system(cmd.c_str());
        (void)rc;
    }

    std::string path(const std::string &name) const
    {
        return dir_ + "/" + name;
    }

  private:
    std::string dir_;
};

Json
samplePayload(int marker)
{
    Json p = Json::object();
    p.set("kind", "test");
    p.set("marker", marker);
    Json arr = Json::array();
    arr.push(1.5);
    arr.push(0.1);
    p.set("values", std::move(arr));
    return p;
}

TEST(Crc32, KnownVectors)
{
    // The standard check value for CRC-32/IEEE.
    EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
    EXPECT_EQ(crc32(std::string("")), 0x00000000u);
    EXPECT_EQ(crc32(std::string("a")), 0xE8B7BE43u);
}

TEST(AtomicWrite, WritesAndReplaces)
{
    ScratchDir dir;
    std::string p = dir.path("f.txt");
    atomicWriteFile(p, "first\n");
    std::string got;
    ASSERT_TRUE(readFile(p, got));
    EXPECT_EQ(got, "first\n");

    atomicWriteFile(p, "second\n");
    ASSERT_TRUE(readFile(p, got));
    EXPECT_EQ(got, "second\n");

    // No .tmp residue is left behind.
    EXPECT_FALSE(readFile(p + ".tmp", got));
}

TEST(AtomicWrite, FailureIsLoud)
{
    EXPECT_THROW(
        atomicWriteFile("/nonexistent-dir-xyz/f.txt", "data"),
        FatalError);
}

TEST(StateFile, RoundTrip)
{
    ScratchDir dir;
    std::string p = dir.path("state.json");
    EXPECT_FALSE(stateFileExists(p));
    writeStateFile(p, samplePayload(1));
    EXPECT_TRUE(stateFileExists(p));

    StateLoad load = loadStateFile(p);
    EXPECT_FALSE(load.usedBackup);
    EXPECT_EQ(load.payload.dump(), samplePayload(1).dump());
}

TEST(StateFile, RotatesBackupOnRewrite)
{
    ScratchDir dir;
    std::string p = dir.path("state.json");
    writeStateFile(p, samplePayload(1));
    writeStateFile(p, samplePayload(2));

    // Main file holds the new payload; .bak holds the previous one.
    StateLoad load = loadStateFile(p);
    EXPECT_FALSE(load.usedBackup);
    EXPECT_EQ(load.payload.dump(), samplePayload(2).dump());

    std::string bak;
    ASSERT_TRUE(readFile(stateBackupPath(p), bak));
    StateLoad bload = loadStateFile(stateBackupPath(p));
    EXPECT_EQ(bload.payload.dump(), samplePayload(1).dump());
}

TEST(StateFile, TruncatedMainFallsBackToBackup)
{
    ScratchDir dir;
    std::string p = dir.path("state.json");
    writeStateFile(p, samplePayload(1));
    writeStateFile(p, samplePayload(2));

    // Simulate a torn write the atomic layer is supposed to prevent
    // (e.g. manual editing or filesystem damage): truncate main.
    std::string text;
    ASSERT_TRUE(readFile(p, text));
    atomicWriteFile(p, text.substr(0, text.size() / 2));

    StateLoad load = loadStateFile(p);
    EXPECT_TRUE(load.usedBackup);
    EXPECT_NE(load.warning.find("recovered"), std::string::npos);
    EXPECT_EQ(load.payload.dump(), samplePayload(1).dump());
}

TEST(StateFile, ChecksumMismatchDetected)
{
    ScratchDir dir;
    std::string p = dir.path("state.json");
    writeStateFile(p, samplePayload(1));
    writeStateFile(p, samplePayload(2));

    // Flip payload content without updating the stored CRC.
    std::string text;
    ASSERT_TRUE(readFile(p, text));
    size_t pos = text.find("\"marker\": 2");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 11, "\"marker\": 9");
    atomicWriteFile(p, text);

    StateLoad load = loadStateFile(p);
    EXPECT_TRUE(load.usedBackup);
    EXPECT_NE(load.warning.find("checksum mismatch"),
              std::string::npos);
    EXPECT_EQ(load.payload.dump(), samplePayload(1).dump());
}

TEST(StateFile, VersionMismatchDetected)
{
    ScratchDir dir;
    std::string p = dir.path("state.json");
    writeStateFile(p, samplePayload(1));
    writeStateFile(p, samplePayload(2));

    std::string text;
    ASSERT_TRUE(readFile(p, text));
    size_t pos = text.find("\"version\": 1");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 12, "\"version\": 99");
    atomicWriteFile(p, text);

    StateLoad load = loadStateFile(p);
    EXPECT_TRUE(load.usedBackup);
    EXPECT_NE(load.warning.find("version"), std::string::npos);
    EXPECT_EQ(load.payload.dump(), samplePayload(1).dump());
}

TEST(StateFile, BothUnusableIsFatal)
{
    ScratchDir dir;
    std::string p = dir.path("state.json");
    atomicWriteFile(p, "not json at all");
    atomicWriteFile(stateBackupPath(p), "{\"also\": \"bad\"}");
    EXPECT_THROW(loadStateFile(p), FatalError);
}

TEST(StateFile, MissingIsFatal)
{
    ScratchDir dir;
    EXPECT_THROW(loadStateFile(dir.path("absent.json")), FatalError);
}

TEST(StateFile, CorruptMainDoesNotClobberGoodBackup)
{
    ScratchDir dir;
    std::string p = dir.path("state.json");
    writeStateFile(p, samplePayload(1));
    writeStateFile(p, samplePayload(2));
    // Corrupt the main file, then write a new checkpoint: the
    // rotation must skip the corrupt main so .bak keeps payload 1
    // (the last good checkpoint), not the corrupt bytes.
    atomicWriteFile(p, "garbage");
    writeStateFile(p, samplePayload(3));

    StateLoad bload = loadStateFile(stateBackupPath(p));
    EXPECT_EQ(bload.payload.dump(), samplePayload(1).dump());
    StateLoad load = loadStateFile(p);
    EXPECT_FALSE(load.usedBackup);
    EXPECT_EQ(load.payload.dump(), samplePayload(3).dump());
}

TEST(StateFile, ExistsChecksBackupToo)
{
    ScratchDir dir;
    std::string p = dir.path("state.json");
    writeStateFile(p, samplePayload(1));
    writeStateFile(p, samplePayload(2));
    ASSERT_EQ(::unlink(p.c_str()), 0);
    EXPECT_TRUE(stateFileExists(p));
    StateLoad load = loadStateFile(p);
    EXPECT_TRUE(load.usedBackup);
    EXPECT_EQ(load.payload.dump(), samplePayload(1).dump());
}

} // namespace
} // namespace rigor
