/**
 * @file
 * Fault-injection tests: plan parsing, deterministic arming, and — the
 * point of injecting faults with known parameters — proof that the
 * harness detects, retries, quarantines and reports each fault kind
 * exactly as designed.
 */

#include <gtest/gtest.h>

#include "harness/analysis.hh"
#include "harness/fault.hh"
#include "harness/runner.hh"
#include "support/logging.hh"

namespace rigor {
namespace harness {
namespace {

RunnerConfig
faultConfig()
{
    RunnerConfig cfg;
    cfg.invocations = 4;
    cfg.iterations = 12;
    cfg.tier = vm::Tier::Interp;
    cfg.seed = 0xabc;
    cfg.size = workloads::findWorkload("sieve").testSize;
    cfg.maxRetries = 1;
    return cfg;
}

FaultInjector
injectorFor(const std::string &spec, uint64_t seed = 0xabc)
{
    FaultPlan plan;
    plan.add(spec);
    return FaultInjector(std::move(plan), seed);
}

TEST(FaultPlan, ParsesSpecs)
{
    FaultSpec s = FaultPlan::parseSpec("throw:wl=sieve:inv=0");
    EXPECT_EQ(s.kind, FaultKind::Throw);
    EXPECT_EQ(s.workload, "sieve");
    EXPECT_EQ(s.invocation, 0);
    EXPECT_EQ(s.maxTriggers, 1);
    EXPECT_DOUBLE_EQ(s.probability, 1.0);

    s = FaultPlan::parseSpec("checksum:inv=2:n=3");
    EXPECT_EQ(s.kind, FaultKind::CorruptChecksum);
    EXPECT_TRUE(s.workload.empty());
    EXPECT_EQ(s.maxTriggers, 3);

    s = FaultPlan::parseSpec("stall:mag=500");
    EXPECT_EQ(s.kind, FaultKind::Stall);
    EXPECT_DOUBLE_EQ(s.effectiveMagnitude(), 500.0);

    s = FaultPlan::parseSpec("ramp:p=0.5");
    EXPECT_EQ(s.kind, FaultKind::NoiseRamp);
    EXPECT_DOUBLE_EQ(s.probability, 0.5);
    EXPECT_DOUBLE_EQ(s.effectiveMagnitude(), 0.05);
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    EXPECT_THROW(FaultPlan::parseSpec(""), FatalError);
    EXPECT_THROW(FaultPlan::parseSpec("explode"), FatalError);
    EXPECT_THROW(FaultPlan::parseSpec("throw:inv"), FatalError);
    EXPECT_THROW(FaultPlan::parseSpec("throw:inv=x"), FatalError);
    EXPECT_THROW(FaultPlan::parseSpec("throw:inv=-1"), FatalError);
    EXPECT_THROW(FaultPlan::parseSpec("throw:n=0"), FatalError);
    EXPECT_THROW(FaultPlan::parseSpec("throw:p=1.5"), FatalError);
    EXPECT_THROW(FaultPlan::parseSpec("stall:mag=0"), FatalError);
    EXPECT_THROW(FaultPlan::parseSpec("throw:bogus=1"), FatalError);
}

TEST(FaultPlan, ParsesIoSpecs)
{
    IoFaultSpec s = FaultPlan::parseIoSpec("io:crash-at=7");
    EXPECT_EQ(s.kind, IoFaultKind::CrashAt);
    EXPECT_EQ(s.at, 7);
    EXPECT_TRUE(s.op.empty());

    s = FaultPlan::parseIoSpec("io:enospc:at=3:op=fsync");
    EXPECT_EQ(s.kind, IoFaultKind::Enospc);
    EXPECT_EQ(s.at, 3);
    EXPECT_EQ(s.op, "fsync");

    s = FaultPlan::parseIoSpec("io:short-write:n=1000:mag=1");
    EXPECT_EQ(s.kind, IoFaultKind::ShortWrite);
    EXPECT_EQ(s.maxTriggers, 1000);
    EXPECT_DOUBLE_EQ(s.magnitude, 1.0);

    s = FaultPlan::parseIoSpec("io:torn-rename:path=entry-");
    EXPECT_EQ(s.kind, IoFaultKind::TornRename);
    EXPECT_EQ(s.pathSubstr, "entry-");

    s = FaultPlan::parseIoSpec("io:fsync-fail:p=0.5");
    EXPECT_EQ(s.kind, IoFaultKind::FsyncFail);
    EXPECT_DOUBLE_EQ(s.probability, 0.5);

    // FaultPlan::add routes the two spec families apart.
    FaultPlan plan;
    plan.add("throw:wl=sieve");
    plan.add("io:crash-at=2");
    EXPECT_EQ(plan.faults.size(), 1u);
    EXPECT_EQ(plan.ioFaults.size(), 1u);
    EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, RejectsMalformedIoSpecs)
{
    EXPECT_THROW(FaultPlan::parseIoSpec("io:"), FatalError);
    EXPECT_THROW(FaultPlan::parseIoSpec("io:explode"), FatalError);
    EXPECT_THROW(FaultPlan::parseIoSpec("io:crash-at=0"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parseIoSpec("io:crash-at=x"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parseIoSpec("io:enospc:at=0"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parseIoSpec("io:enospc:op=read"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parseIoSpec("io:enospc:p=2"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parseIoSpec("io:enospc:bogus=1"),
                 FatalError);
    // Kind/op combinations that would silently do nothing.
    EXPECT_THROW(FaultPlan::parseIoSpec("io:torn-rename:op=write"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parseIoSpec("io:short-write:op=fsync"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parseIoSpec("io:fsync-fail:op=write"),
                 FatalError);
}

TEST(FaultInjector, TargetingFilters)
{
    auto inj = injectorFor("throw:wl=sieve:inv=1:n=2");
    EXPECT_EQ(inj.query("queens", 1, 0), nullptr);
    EXPECT_EQ(inj.query("sieve", 0, 0), nullptr);
    ASSERT_NE(inj.query("sieve", 1, 0), nullptr);
    ASSERT_NE(inj.query("sieve", 1, 1), nullptr);
    EXPECT_EQ(inj.query("sieve", 1, 2), nullptr);  // n exhausted
}

TEST(FaultInjector, ProbabilisticArmingIsDeterministic)
{
    auto a = injectorFor("throw:p=0.5", 7);
    auto b = injectorFor("throw:p=0.5", 7);
    auto c = injectorFor("throw:p=0.5", 8);
    int fired = 0, differs = 0;
    for (int inv = 0; inv < 64; ++inv) {
        bool fa = a.query("sieve", inv, 0) != nullptr;
        bool fb = b.query("sieve", inv, 0) != nullptr;
        bool fc = c.query("sieve", inv, 0) != nullptr;
        EXPECT_EQ(fa, fb);  // same seed, same decision — always
        fired += fa;
        differs += fa != fc;
    }
    // p=0.5 over 64 draws: both some hits and some misses, and a
    // different seed produces a different arming pattern.
    EXPECT_GT(fired, 10);
    EXPECT_LT(fired, 54);
    EXPECT_GT(differs, 0);
}

TEST(FaultInjector, TimeFactors)
{
    FaultSpec stall = FaultPlan::parseSpec("stall");
    EXPECT_DOUBLE_EQ(FaultInjector::timeFactor(stall, 0), 1000.0);
    FaultSpec ramp = FaultPlan::parseSpec("ramp:mag=0.2");
    EXPECT_DOUBLE_EQ(FaultInjector::timeFactor(ramp, 0), 1.0);
    EXPECT_DOUBLE_EQ(FaultInjector::timeFactor(ramp, 10), 3.0);
    FaultSpec thr = FaultPlan::parseSpec("throw");
    EXPECT_DOUBLE_EQ(FaultInjector::timeFactor(thr, 5), 1.0);
}

TEST(FaultRun, EmptyPlanIsTransparent)
{
    auto cfg = faultConfig();
    RunResult clean = runExperiment("sieve", cfg);
    FaultInjector empty(FaultPlan{}, cfg.seed);
    cfg.faults = &empty;
    RunResult injected = runExperiment("sieve", cfg);
    ASSERT_EQ(clean.invocations.size(), injected.invocations.size());
    for (size_t i = 0; i < clean.invocations.size(); ++i) {
        auto a = clean.invocations[i].times();
        auto b = injected.invocations[i].times();
        ASSERT_EQ(a.size(), b.size());
        for (size_t j = 0; j < a.size(); ++j)
            EXPECT_DOUBLE_EQ(a[j], b[j]);
    }
    EXPECT_TRUE(injected.failures.empty());
}

TEST(FaultRun, ThrowFaultRetriedAndRecorded)
{
    auto cfg = faultConfig();
    auto inj = injectorFor("throw:inv=1:n=1");
    cfg.faults = &inj;
    RunResult run = runExperiment("sieve", cfg);

    ASSERT_EQ(run.invocations.size(), 4u);  // retry filled the slot
    ASSERT_EQ(run.failures.size(), 1u);
    const auto &f = run.failures[0];
    EXPECT_EQ(f.kind, FailureKind::VmError);
    EXPECT_EQ(f.invocation, 1);
    EXPECT_EQ(f.attempt, 0);
    EXPECT_GT(f.backoffMs, 0.0);
    EXPECT_NE(f.message.find("injected fault"), std::string::npos);
    EXPECT_FALSE(run.quarantined);
    EXPECT_EQ(run.invocationsAttempted, 4);
    // The replacement attempt ran under a different derived seed.
    RunResult clean = runExperiment("sieve", faultConfig());
    EXPECT_NE(run.invocations[1].invocationSeed,
              clean.invocations[1].invocationSeed);
    EXPECT_EQ(run.invocations[0].invocationSeed,
              clean.invocations[0].invocationSeed);
}

TEST(FaultRun, ChecksumCorruptionDetectedAndRetried)
{
    auto cfg = faultConfig();
    auto inj = injectorFor("checksum:inv=2:n=1");
    cfg.faults = &inj;
    RunResult run = runExperiment("sieve", cfg);

    ASSERT_EQ(run.invocations.size(), 4u);
    ASSERT_EQ(run.failures.size(), 1u);
    EXPECT_EQ(run.failures[0].kind, FailureKind::ChecksumMismatch);
    EXPECT_EQ(run.failures[0].invocation, 2);
    // After the retry every surviving checksum agrees.
    for (const auto &inv : run.invocations)
        EXPECT_EQ(inv.checksum, run.invocations[0].checksum);
}

TEST(FaultRun, StallTripsDeadline)
{
    auto cfg = faultConfig();
    RunResult clean = runExperiment("sieve", cfg);
    double invocation_ms = 0.0;
    for (const auto &s : clean.invocations[0].samples)
        invocation_ms += s.timeMs;

    cfg.deadlineMs = 3.0 * invocation_ms;
    auto inj = injectorFor("stall:inv=1:n=99");
    cfg.faults = &inj;
    RunResult run = runExperiment("sieve", cfg);

    // Invocation 1 stalls on every attempt: both attempts blow the
    // deadline, the slot stays empty, the run continues.
    ASSERT_EQ(run.invocations.size(), 3u);
    ASSERT_EQ(run.failures.size(), 2u);
    for (const auto &f : run.failures) {
        EXPECT_EQ(f.kind, FailureKind::DeadlineExceeded);
        EXPECT_EQ(f.invocation, 1);
    }
    EXPECT_FALSE(run.quarantined);
    EXPECT_EQ(run.invocationsAttempted, 4);
    // The deadline did not clip any healthy invocation.
    for (const auto &inv : run.invocations)
        EXPECT_EQ(inv.samples.size(), 12u);
}

TEST(FaultRun, NoiseRampFlaggedAsSlowdown)
{
    auto cfg = faultConfig();
    cfg.noise.enabled = false;
    cfg.iterations = 20;
    auto inj = injectorFor("ramp:mag=0.2:n=99");
    cfg.faults = &inj;
    RunResult run = runExperiment("sieve", cfg);

    ASSERT_EQ(run.invocations.size(), 4u);
    EXPECT_TRUE(run.failures.empty());  // a regime, not a crash
    // The injected thermal-throttle ramp is visible in the data...
    auto times = run.invocations[0].times();
    EXPECT_GT(times.back(), times.front() * 2.0);
    // ...and the steady-state detector flags the pathology.
    auto summary = analyzeSteadyState(run);
    EXPECT_GT(summary.slowdown + summary.noSteadyState, 0);
    EXPECT_EQ(summary.flat, 0);
}

TEST(FaultRun, QuarantineAfterConsecutiveFailures)
{
    auto cfg = faultConfig();
    cfg.invocations = 8;
    cfg.quarantineAfter = 3;
    auto inj = injectorFor("throw:n=99");  // every attempt fails
    cfg.faults = &inj;
    RunResult run = runExperiment("sieve", cfg);  // must not throw

    EXPECT_TRUE(run.quarantined);
    EXPECT_FALSE(run.quarantineReason.empty());
    EXPECT_TRUE(run.invocations.empty());
    // 3 consecutive invocations x (1 try + 1 retry) each.
    EXPECT_EQ(run.failures.size(), 6u);
    EXPECT_EQ(run.invocationsAttempted, 3);
    EXPECT_EQ(run.consecutiveFailures, 3);
    // A quarantined run refuses further extension.
    extendExperiment(workloads::findWorkload("sieve"), cfg, run, 4);
    EXPECT_EQ(run.invocationsAttempted, 3);
}

TEST(FaultRun, QuarantineDisabledKeepsTrying)
{
    auto cfg = faultConfig();
    cfg.quarantineAfter = 0;
    cfg.maxRetries = 0;
    auto inj = injectorFor("throw:n=99");
    cfg.faults = &inj;
    RunResult run = runExperiment("sieve", cfg);
    EXPECT_FALSE(run.quarantined);
    EXPECT_EQ(run.invocationsAttempted, 4);
    EXPECT_EQ(run.failures.size(), 4u);
}

TEST(FaultRun, FaultedRunIsDeterministic)
{
    auto make = [] {
        auto cfg = faultConfig();
        return cfg;
    };
    auto inj = injectorFor("throw:inv=1:n=1");
    auto cfg_a = make();
    cfg_a.faults = &inj;
    auto cfg_b = make();
    cfg_b.faults = &inj;
    RunResult a = runExperiment("sieve", cfg_a);
    RunResult b = runExperiment("sieve", cfg_b);
    ASSERT_EQ(a.invocations.size(), b.invocations.size());
    ASSERT_EQ(a.failures.size(), b.failures.size());
    EXPECT_EQ(a.failures[0].seed, b.failures[0].seed);
    for (size_t i = 0; i < a.invocations.size(); ++i) {
        auto ta = a.invocations[i].times();
        auto tb = b.invocations[i].times();
        ASSERT_EQ(ta.size(), tb.size());
        for (size_t j = 0; j < ta.size(); ++j)
            EXPECT_DOUBLE_EQ(ta[j], tb[j]);
    }
}

TEST(FaultRun, AllFailedRunHasNoEstimate)
{
    auto cfg = faultConfig();
    cfg.quarantineAfter = 2;
    auto inj = injectorFor("throw:n=99");
    cfg.faults = &inj;
    RunResult run = runExperiment("sieve", cfg);
    EXPECT_TRUE(run.invocations.empty());
    EXPECT_THROW(rigorousEstimate(run), FatalError);
}

} // namespace
} // namespace harness
} // namespace rigor
