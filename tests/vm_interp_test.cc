/**
 * @file
 * End-to-end interpreter tests: compile MiniPy source, run it, and
 * check results via globals, captured output, or returned values.
 */

#include <gtest/gtest.h>

#include "vm/compiler.hh"
#include "vm/interp.hh"

namespace rigor {
namespace vm {
namespace {

/** Run source and return the interp for inspection. */
std::unique_ptr<Interp>
run(const std::string &src, InterpConfig cfg = {})
{
    static std::vector<std::unique_ptr<Program>> keep_alive;
    keep_alive.push_back(
        std::make_unique<Program>(compileSource(src)));
    auto interp =
        std::make_unique<Interp>(*keep_alive.back(), cfg);
    interp->runModule();
    return interp;
}

int64_t
globalInt(Interp &in, const std::string &name)
{
    Value v;
    EXPECT_TRUE(in.getGlobal(name, v)) << "missing global " << name;
    EXPECT_TRUE(v.isInt()) << name << " is " << v.typeName();
    return v.isInt() ? v.asInt() : 0;
}

double
globalFloat(Interp &in, const std::string &name)
{
    Value v;
    EXPECT_TRUE(in.getGlobal(name, v));
    EXPECT_TRUE(v.isFloat());
    return v.isFloat() ? v.asFloat() : 0.0;
}

std::string
globalStr(Interp &in, const std::string &name)
{
    Value v;
    EXPECT_TRUE(in.getGlobal(name, v));
    return v.str();
}

TEST(InterpBasics, Arithmetic)
{
    auto in = run("x = 2 + 3 * 4\n"
                  "y = (2 + 3) * 4\n"
                  "z = 7 // 2\n"
                  "w = 7 % 3\n"
                  "v = 2 ** 10\n");
    EXPECT_EQ(globalInt(*in, "x"), 14);
    EXPECT_EQ(globalInt(*in, "y"), 20);
    EXPECT_EQ(globalInt(*in, "z"), 3);
    EXPECT_EQ(globalInt(*in, "w"), 1);
    EXPECT_EQ(globalInt(*in, "v"), 1024);
}

TEST(InterpBasics, NegativeFloorDivModFollowPython)
{
    auto in = run("a = -7 // 2\n"
                  "b = -7 % 2\n"
                  "c = 7 // -2\n"
                  "d = 7 % -2\n");
    EXPECT_EQ(globalInt(*in, "a"), -4);
    EXPECT_EQ(globalInt(*in, "b"), 1);
    EXPECT_EQ(globalInt(*in, "c"), -4);
    EXPECT_EQ(globalInt(*in, "d"), -1);
}

TEST(InterpBasics, TrueDivisionProducesFloat)
{
    auto in = run("x = 7 / 2\n");
    EXPECT_DOUBLE_EQ(globalFloat(*in, "x"), 3.5);
}

TEST(InterpBasics, FloatArithmetic)
{
    auto in = run("x = 0.5 + 0.25\n"
                  "y = 2.0 ** -1\n"
                  "z = 7.5 % 2.0\n");
    EXPECT_DOUBLE_EQ(globalFloat(*in, "x"), 0.75);
    EXPECT_DOUBLE_EQ(globalFloat(*in, "y"), 0.5);
    EXPECT_DOUBLE_EQ(globalFloat(*in, "z"), 1.5);
}

TEST(InterpBasics, BitwiseOps)
{
    auto in = run("a = 12 & 10\n"
                  "b = 12 | 10\n"
                  "c = 12 ^ 10\n"
                  "d = 1 << 10\n"
                  "e = 1024 >> 3\n"
                  "f = ~5\n");
    EXPECT_EQ(globalInt(*in, "a"), 8);
    EXPECT_EQ(globalInt(*in, "b"), 14);
    EXPECT_EQ(globalInt(*in, "c"), 6);
    EXPECT_EQ(globalInt(*in, "d"), 1024);
    EXPECT_EQ(globalInt(*in, "e"), 128);
    EXPECT_EQ(globalInt(*in, "f"), -6);
}

TEST(InterpBasics, StringOps)
{
    auto in = run("s = 'abc' + 'def'\n"
                  "t = 'ab' * 3\n"
                  "u = s[2]\n"
                  "v = s[-1]\n"
                  "w = len(s)\n");
    EXPECT_EQ(globalStr(*in, "s"), "abcdef");
    EXPECT_EQ(globalStr(*in, "t"), "ababab");
    EXPECT_EQ(globalStr(*in, "u"), "c");
    EXPECT_EQ(globalStr(*in, "v"), "f");
    EXPECT_EQ(globalInt(*in, "w"), 6);
}

TEST(InterpBasics, StringFormatting)
{
    auto in = run("s = 'x=%d y=%s' % (42, 'hi')\n");
    EXPECT_EQ(globalStr(*in, "s"), "x=42 y=hi");
}

TEST(InterpBasics, Slicing)
{
    auto in = run("s = 'abcdef'\n"
                  "a = s[1:4]\n"
                  "b = s[:3]\n"
                  "c = s[3:]\n"
                  "d = s[::2]\n"
                  "e = s[::-1]\n"
                  "l = [1, 2, 3, 4, 5]\n"
                  "f = l[1:3]\n"
                  "g = l[-2:]\n");
    EXPECT_EQ(globalStr(*in, "a"), "bcd");
    EXPECT_EQ(globalStr(*in, "b"), "abc");
    EXPECT_EQ(globalStr(*in, "c"), "def");
    EXPECT_EQ(globalStr(*in, "d"), "ace");
    EXPECT_EQ(globalStr(*in, "e"), "fedcba");
    Value f;
    ASSERT_TRUE(in->getGlobal("f", f));
    EXPECT_EQ(f.repr(), "[2, 3]");
    Value g;
    ASSERT_TRUE(in->getGlobal("g", g));
    EXPECT_EQ(g.repr(), "[4, 5]");
}

TEST(InterpBasics, BoolLogicShortCircuit)
{
    auto in = run("def boom():\n"
                  "    return 1 // 0\n"
                  "a = False and boom()\n"
                  "b = True or boom()\n"
                  "c = 1 and 2 and 3\n"
                  "d = 0 or '' or 'x'\n"
                  "e = not 0\n");
    Value a, b;
    ASSERT_TRUE(in->getGlobal("a", a));
    EXPECT_TRUE(a.isBool());
    EXPECT_FALSE(a.asBool());
    ASSERT_TRUE(in->getGlobal("b", b));
    EXPECT_TRUE(b.asBool());
    EXPECT_EQ(globalInt(*in, "c"), 3);
    EXPECT_EQ(globalStr(*in, "d"), "x");
    Value e;
    ASSERT_TRUE(in->getGlobal("e", e));
    EXPECT_TRUE(e.asBool());
}

TEST(InterpControl, WhileLoop)
{
    auto in = run("total = 0\n"
                  "i = 0\n"
                  "while i < 100:\n"
                  "    total += i\n"
                  "    i += 1\n");
    EXPECT_EQ(globalInt(*in, "total"), 4950);
}

TEST(InterpControl, ForRange)
{
    auto in = run("total = 0\n"
                  "for i in range(1, 11):\n"
                  "    total += i\n"
                  "neg = 0\n"
                  "for i in range(10, 0, -2):\n"
                  "    neg += i\n");
    EXPECT_EQ(globalInt(*in, "total"), 55);
    EXPECT_EQ(globalInt(*in, "neg"), 30);
}

TEST(InterpControl, BreakContinue)
{
    auto in = run("total = 0\n"
                  "for i in range(100):\n"
                  "    if i % 2 == 0:\n"
                  "        continue\n"
                  "    if i > 10:\n"
                  "        break\n"
                  "    total += i\n");
    EXPECT_EQ(globalInt(*in, "total"), 1 + 3 + 5 + 7 + 9);
}

TEST(InterpControl, NestedLoopsWithBreak)
{
    auto in = run("hits = 0\n"
                  "for i in range(10):\n"
                  "    for j in range(10):\n"
                  "        if j == 3:\n"
                  "            break\n"
                  "        hits += 1\n");
    EXPECT_EQ(globalInt(*in, "hits"), 30);
}

TEST(InterpControl, IfElifElse)
{
    auto in = run("def classify(x):\n"
                  "    if x < 0:\n"
                  "        return 'neg'\n"
                  "    elif x == 0:\n"
                  "        return 'zero'\n"
                  "    else:\n"
                  "        return 'pos'\n"
                  "a = classify(-5)\n"
                  "b = classify(0)\n"
                  "c = classify(7)\n");
    EXPECT_EQ(globalStr(*in, "a"), "neg");
    EXPECT_EQ(globalStr(*in, "b"), "zero");
    EXPECT_EQ(globalStr(*in, "c"), "pos");
}

TEST(InterpFunctions, RecursionFibonacci)
{
    auto in = run("def fib(n):\n"
                  "    if n < 2:\n"
                  "        return n\n"
                  "    return fib(n - 1) + fib(n - 2)\n"
                  "x = fib(15)\n");
    EXPECT_EQ(globalInt(*in, "x"), 610);
}

TEST(InterpFunctions, DefaultArguments)
{
    auto in = run("def f(a, b=10, c=20):\n"
                  "    return a + b + c\n"
                  "x = f(1)\n"
                  "y = f(1, 2)\n"
                  "z = f(1, 2, 3)\n");
    EXPECT_EQ(globalInt(*in, "x"), 31);
    EXPECT_EQ(globalInt(*in, "y"), 23);
    EXPECT_EQ(globalInt(*in, "z"), 6);
}

TEST(InterpFunctions, GlobalStatement)
{
    auto in = run("counter = 0\n"
                  "def bump():\n"
                  "    global counter\n"
                  "    counter += 1\n"
                  "bump()\n"
                  "bump()\n"
                  "bump()\n");
    EXPECT_EQ(globalInt(*in, "counter"), 3);
}

TEST(InterpFunctions, CallGlobalFromHost)
{
    auto in = run("def add(a, b):\n"
                  "    return a + b\n");
    Value r = in->callGlobal(
        "add", {Value::makeInt(40), Value::makeInt(2)});
    EXPECT_EQ(r.asInt(), 42);
}

TEST(InterpFunctions, WrongArityThrows)
{
    auto in = run("def f(a):\n"
                  "    return a\n");
    EXPECT_THROW(in->callGlobal("f", {}), VmError);
    EXPECT_THROW(in->callGlobal("f", {Value::makeInt(1),
                                      Value::makeInt(2)}),
                 VmError);
}

TEST(InterpFunctions, MaxRecursionDepth)
{
    auto prog = compileSource("def f():\n"
                              "    return f()\n");
    InterpConfig cfg;
    cfg.maxCallDepth = 50;
    Interp in(prog, cfg);
    in.runModule();
    EXPECT_THROW(in.callGlobal("f", {}), VmError);
}

TEST(InterpCollections, ListBasics)
{
    auto in = run("l = [1, 2, 3]\n"
                  "l.append(4)\n"
                  "l[0] = 10\n"
                  "n = len(l)\n"
                  "s = sum(l)\n"
                  "p = l.pop()\n");
    EXPECT_EQ(globalInt(*in, "n"), 4);
    EXPECT_EQ(globalInt(*in, "s"), 19);
    EXPECT_EQ(globalInt(*in, "p"), 4);
}

TEST(InterpCollections, ListMethods)
{
    auto in = run("l = [3, 1, 2]\n"
                  "l.sort()\n"
                  "first = l[0]\n"
                  "l.reverse()\n"
                  "top = l[0]\n"
                  "l.insert(1, 99)\n"
                  "second = l[1]\n"
                  "i = l.index(99)\n"
                  "l.extend([7, 7])\n"
                  "c = l.count(7)\n");
    EXPECT_EQ(globalInt(*in, "first"), 1);
    EXPECT_EQ(globalInt(*in, "top"), 3);
    EXPECT_EQ(globalInt(*in, "second"), 99);
    EXPECT_EQ(globalInt(*in, "i"), 1);
    EXPECT_EQ(globalInt(*in, "c"), 2);
}

TEST(InterpCollections, DictBasics)
{
    auto in = run("d = {'a': 1, 'b': 2}\n"
                  "d['c'] = 3\n"
                  "x = d['a'] + d['b'] + d['c']\n"
                  "n = len(d)\n"
                  "g = d.get('missing', 42)\n"
                  "has = 'b' in d\n"
                  "hasnt = 'z' not in d\n");
    EXPECT_EQ(globalInt(*in, "x"), 6);
    EXPECT_EQ(globalInt(*in, "n"), 3);
    EXPECT_EQ(globalInt(*in, "g"), 42);
    Value has, hasnt;
    ASSERT_TRUE(in->getGlobal("has", has));
    ASSERT_TRUE(in->getGlobal("hasnt", hasnt));
    EXPECT_TRUE(has.asBool());
    EXPECT_TRUE(hasnt.asBool());
}

TEST(InterpCollections, DictIterationPreservesInsertionOrder)
{
    auto in = run("d = {}\n"
                  "d['x'] = 1\n"
                  "d['y'] = 2\n"
                  "d['z'] = 3\n"
                  "keys = ''\n"
                  "total = 0\n"
                  "for k in d:\n"
                  "    keys = keys + k\n"
                  "for k, v in d.items():\n"
                  "    total += v\n");
    EXPECT_EQ(globalStr(*in, "keys"), "xyz");
    EXPECT_EQ(globalInt(*in, "total"), 6);
}

TEST(InterpCollections, DictDelete)
{
    auto in = run("d = {'a': 1, 'b': 2}\n"
                  "del d['a']\n"
                  "n = len(d)\n"
                  "gone = 'a' not in d\n");
    EXPECT_EQ(globalInt(*in, "n"), 1);
    Value gone;
    ASSERT_TRUE(in->getGlobal("gone", gone));
    EXPECT_TRUE(gone.asBool());
}

TEST(InterpCollections, TupleUnpacking)
{
    auto in = run("a, b = 1, 2\n"
                  "a, b = b, a\n"
                  "t = (10, 20, 30)\n"
                  "x, y, z = t\n");
    EXPECT_EQ(globalInt(*in, "a"), 2);
    EXPECT_EQ(globalInt(*in, "b"), 1);
    EXPECT_EQ(globalInt(*in, "x"), 10);
    EXPECT_EQ(globalInt(*in, "z"), 30);
}

TEST(InterpClasses, BasicClassWithInit)
{
    auto in = run("class Point:\n"
                  "    def __init__(self, x, y):\n"
                  "        self.x = x\n"
                  "        self.y = y\n"
                  "    def dist2(self):\n"
                  "        return self.x * self.x + self.y * self.y\n"
                  "p = Point(3, 4)\n"
                  "d = p.dist2()\n"
                  "p.x = 6\n"
                  "d2 = p.dist2()\n");
    EXPECT_EQ(globalInt(*in, "d"), 25);
    EXPECT_EQ(globalInt(*in, "d2"), 52);
}

TEST(InterpClasses, Inheritance)
{
    auto in = run("class Animal:\n"
                  "    def __init__(self, name):\n"
                  "        self.name = name\n"
                  "    def speak(self):\n"
                  "        return 'generic'\n"
                  "    def intro(self):\n"
                  "        return self.name + ': ' + self.speak()\n"
                  "class Dog(Animal):\n"
                  "    def speak(self):\n"
                  "        return 'woof'\n"
                  "d = Dog('rex')\n"
                  "s = d.intro()\n"
                  "ok = isinstance(d, Dog)\n"
                  "ok2 = isinstance(d, Animal)\n");
    EXPECT_EQ(globalStr(*in, "s"), "rex: woof");
    Value ok, ok2;
    ASSERT_TRUE(in->getGlobal("ok", ok));
    ASSERT_TRUE(in->getGlobal("ok2", ok2));
    EXPECT_TRUE(ok.asBool());
    EXPECT_TRUE(ok2.asBool());
}

TEST(InterpClasses, BaseMethodCallStyle)
{
    auto in = run("class Base:\n"
                  "    def __init__(self, v):\n"
                  "        self.v = v\n"
                  "class Derived(Base):\n"
                  "    def __init__(self, v):\n"
                  "        Base.__init__(self, v * 2)\n"
                  "d = Derived(21)\n"
                  "x = d.v\n");
    EXPECT_EQ(globalInt(*in, "x"), 42);
}

TEST(InterpClasses, ClassAttributes)
{
    auto in = run("class Counter:\n"
                  "    total = 0\n"
                  "    def __init__(self):\n"
                  "        Counter.total = Counter.total + 1\n"
                  "a = Counter()\n"
                  "b = Counter()\n"
                  "c = Counter()\n"
                  "n = Counter.total\n");
    EXPECT_EQ(globalInt(*in, "n"), 3);
}

TEST(InterpBuiltins, Conversions)
{
    auto in = run("a = int('42')\n"
                  "b = int(3.9)\n"
                  "c = float('2.5')\n"
                  "d = str(123)\n"
                  "e = ord('A')\n"
                  "f = chr(66)\n"
                  "g = abs(-5)\n"
                  "h = min(3, 1, 2)\n"
                  "i = max([4, 9, 2])\n");
    EXPECT_EQ(globalInt(*in, "a"), 42);
    EXPECT_EQ(globalInt(*in, "b"), 3);
    EXPECT_DOUBLE_EQ(globalFloat(*in, "c"), 2.5);
    EXPECT_EQ(globalStr(*in, "d"), "123");
    EXPECT_EQ(globalInt(*in, "e"), 65);
    EXPECT_EQ(globalStr(*in, "f"), "B");
    EXPECT_EQ(globalInt(*in, "g"), 5);
    EXPECT_EQ(globalInt(*in, "h"), 1);
    EXPECT_EQ(globalInt(*in, "i"), 9);
}

TEST(InterpBuiltins, SortedAndListConversion)
{
    auto in = run("x = sorted([3, 1, 2])\n"
                  "y = list(range(4))\n"
                  "z = list('abc')\n");
    Value x, y, z;
    ASSERT_TRUE(in->getGlobal("x", x));
    ASSERT_TRUE(in->getGlobal("y", y));
    ASSERT_TRUE(in->getGlobal("z", z));
    EXPECT_EQ(x.repr(), "[1, 2, 3]");
    EXPECT_EQ(y.repr(), "[0, 1, 2, 3]");
    EXPECT_EQ(z.repr(), "['a', 'b', 'c']");
}

TEST(InterpBuiltins, PrintCapturesOutput)
{
    auto in = run("print('hello', 42)\n"
                  "print([1, 2])\n");
    EXPECT_EQ(in->output(), "hello 42\n[1, 2]\n");
}

TEST(InterpBuiltins, StrMethods)
{
    auto in = run("a = 'Hello World'.upper()\n"
                  "b = 'Hello'.lower()\n"
                  "c = 'a,b,c'.split(',')\n"
                  "d = '-'.join(['x', 'y', 'z'])\n"
                  "e = '  pad  '.strip()\n"
                  "f = 'hello'.find('ll')\n"
                  "g = 'aaa'.replace('a', 'bb')\n"
                  "h = 'prefix_x'.startswith('prefix')\n");
    EXPECT_EQ(globalStr(*in, "a"), "HELLO WORLD");
    EXPECT_EQ(globalStr(*in, "b"), "hello");
    Value c;
    ASSERT_TRUE(in->getGlobal("c", c));
    EXPECT_EQ(c.repr(), "['a', 'b', 'c']");
    EXPECT_EQ(globalStr(*in, "d"), "x-y-z");
    EXPECT_EQ(globalStr(*in, "e"), "pad");
    EXPECT_EQ(globalInt(*in, "f"), 2);
    EXPECT_EQ(globalStr(*in, "g"), "bbbbbb");
    Value h;
    ASSERT_TRUE(in->getGlobal("h", h));
    EXPECT_TRUE(h.asBool());
}

TEST(InterpErrors, NameError)
{
    EXPECT_THROW(run("x = undefined_name\n"), VmError);
}

TEST(InterpErrors, DivisionByZero)
{
    EXPECT_THROW(run("x = 1 // 0\n"), VmError);
    EXPECT_THROW(run("x = 1 / 0\n"), VmError);
    EXPECT_THROW(run("x = 1 % 0\n"), VmError);
}

TEST(InterpErrors, TypeErrors)
{
    EXPECT_THROW(run("x = 'a' + 1\n"), VmError);
    EXPECT_THROW(run("x = len(42)\n"), VmError);
    EXPECT_THROW(run("x = [1][5]\n"), VmError);
    EXPECT_THROW(run("x = {}['missing']\n"), VmError);
    EXPECT_THROW(run("x = 5\nx()\n"), VmError);
}

TEST(InterpErrors, AttributeError)
{
    EXPECT_THROW(run("class A:\n"
                     "    pass\n"
                     "a = A()\n"
                     "x = a.missing\n"),
                 VmError);
}

TEST(InterpStatsTest, CountsBytecodesAndAllocs)
{
    auto in = run("l = []\n"
                  "for i in range(100):\n"
                  "    l.append(i * 2)\n");
    EXPECT_GT(in->stats().bytecodes, 500u);
    EXPECT_GT(in->stats().uops, in->stats().bytecodes);
    EXPECT_GT(in->stats().allocations, 0u);
}

TEST(InterpHashSeed, DifferentSeedsSameResults)
{
    std::string src = "d = {}\n"
                      "for i in range(50):\n"
                      "    d[str(i)] = i\n"
                      "total = 0\n"
                      "for k in d:\n"
                      "    total += d[k]\n";
    auto prog = compileSource(src);
    InterpConfig a, b;
    a.hashSeed = 1;
    b.hashSeed = 999;
    Interp ia(prog, a), ib(prog, b);
    ia.runModule();
    ib.runModule();
    Value va, vb;
    ASSERT_TRUE(ia.getGlobal("total", va));
    ASSERT_TRUE(ib.getGlobal("total", vb));
    EXPECT_EQ(va.asInt(), vb.asInt());
}


TEST(InterpComprehensions, BasicListComp)
{
    auto in = run("x = [i * i for i in range(6)]\n");
    Value x;
    ASSERT_TRUE(in->getGlobal("x", x));
    EXPECT_EQ(x.repr(), "[0, 1, 4, 9, 16, 25]");
}

TEST(InterpComprehensions, FilteredComp)
{
    auto in = run("y = [i for i in range(20) if i % 3 == 0]\n");
    Value y;
    ASSERT_TRUE(in->getGlobal("y", y));
    EXPECT_EQ(y.repr(), "[0, 3, 6, 9, 12, 15, 18]");
}

TEST(InterpComprehensions, OverListsAndStrings)
{
    auto in = run("words = ['a', 'bb', 'ccc']\n"
                  "lens = [len(w) for w in words]\n"
                  "ups = [c.upper() for c in 'abc']\n");
    Value lens, ups;
    ASSERT_TRUE(in->getGlobal("lens", lens));
    ASSERT_TRUE(in->getGlobal("ups", ups));
    EXPECT_EQ(lens.repr(), "[1, 2, 3]");
    EXPECT_EQ(ups.repr(), "['A', 'B', 'C']");
}

TEST(InterpComprehensions, NestedComp)
{
    auto in = run(
        "nested = [j for j in [k + 1 for k in range(4)]]\n");
    Value nested;
    ASSERT_TRUE(in->getGlobal("nested", nested));
    EXPECT_EQ(nested.repr(), "[1, 2, 3, 4]");
}

TEST(InterpComprehensions, InsideFunctionUsesLocals)
{
    auto in = run("def f(n):\n"
                  "    return [v * 2 for v in range(n) if v % 2 == 1]\n"
                  "z = f(8)\n");
    Value z;
    ASSERT_TRUE(in->getGlobal("z", z));
    EXPECT_EQ(z.repr(), "[2, 6, 10, 14]");
}

TEST(InterpComprehensions, WorksOnAdaptiveTier)
{
    std::string src = "def f(n):\n"
                      "    return sum([v for v in range(n)])\n";
    auto prog = compileSource(src);
    InterpConfig cfg;
    cfg.tier = Tier::Adaptive;
    cfg.jitThreshold = 1;
    Interp in(prog, cfg);
    in.runModule();
    Value r = in.callGlobal("f", {Value::makeInt(100)});
    EXPECT_EQ(r.asInt(), 4950);
}

TEST(InterpComprehensions, CompVariableLeaksToScope)
{
    // Documented divergence from Python 3: the loop variable binds
    // in the enclosing scope (Python 2 semantics).
    auto in = run("x = [i for i in range(5)]\n"
                  "last = i\n");
    EXPECT_EQ(globalInt(*in, "last"), 4);
}


TEST(InterpBuiltins, EnumerateAndZip)
{
    auto in = run("pairs = enumerate(['a', 'b', 'c'])\n"
                  "s = ''\n"
                  "total = 0\n"
                  "for i, v in pairs:\n"
                  "    total += i\n"
                  "    s = s + v\n"
                  "offset = enumerate('xy', 10)\n"
                  "o0 = offset[0][0]\n"
                  "zipped = zip([1, 2, 3], ['a', 'b'])\n"
                  "n = len(zipped)\n"
                  "z_sum = 0\n"
                  "for a, b in zip([1, 2], [10, 20]):\n"
                  "    z_sum += a * 100 + len(b * 0 == 0 and 'x')\n");
    EXPECT_EQ(globalInt(*in, "total"), 3);
    EXPECT_EQ(globalStr(*in, "s"), "abc");
    EXPECT_EQ(globalInt(*in, "o0"), 10);
    EXPECT_EQ(globalInt(*in, "n"), 2);
}

TEST(InterpBuiltins, ZipThreeWay)
{
    auto in = run(
        "t = zip(range(3), 'abc', [True, False, True])\n"
        "checks = 0\n"
        "for i, c, flag in t:\n"
        "    if flag:\n"
        "        checks += i + ord(c)\n");
    EXPECT_EQ(globalInt(*in, "checks"),
              0 + 'a' + 2 + 'c');
}

} // namespace
} // namespace vm
} // namespace rigor
