# Empty compiler generated dependencies file for rigorbench.
# This may be replaced when dependencies are built.
