file(REMOVE_RECURSE
  "CMakeFiles/rigorbench.dir/rigorbench.cc.o"
  "CMakeFiles/rigorbench.dir/rigorbench.cc.o.d"
  "rigorbench"
  "rigorbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rigorbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
