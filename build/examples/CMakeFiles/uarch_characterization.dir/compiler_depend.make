# Empty compiler generated dependencies file for uarch_characterization.
# This may be replaced when dependencies are built.
