file(REMOVE_RECURSE
  "CMakeFiles/uarch_characterization.dir/uarch_characterization.cpp.o"
  "CMakeFiles/uarch_characterization.dir/uarch_characterization.cpp.o.d"
  "uarch_characterization"
  "uarch_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
