file(REMOVE_RECURSE
  "CMakeFiles/methodology_pitfalls.dir/methodology_pitfalls.cpp.o"
  "CMakeFiles/methodology_pitfalls.dir/methodology_pitfalls.cpp.o.d"
  "methodology_pitfalls"
  "methodology_pitfalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/methodology_pitfalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
