# Empty compiler generated dependencies file for methodology_pitfalls.
# This may be replaced when dependencies are built.
