# Empty dependencies file for warmup_analysis.
# This may be replaced when dependencies are built.
