file(REMOVE_RECURSE
  "CMakeFiles/warmup_analysis.dir/warmup_analysis.cpp.o"
  "CMakeFiles/warmup_analysis.dir/warmup_analysis.cpp.o.d"
  "warmup_analysis"
  "warmup_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warmup_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
