# Empty compiler generated dependencies file for rigor_workloads.
# This may be replaced when dependencies are built.
