
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/wl_data.cc" "src/workloads/CMakeFiles/rigor_workloads.dir/wl_data.cc.o" "gcc" "src/workloads/CMakeFiles/rigor_workloads.dir/wl_data.cc.o.d"
  "/root/repo/src/workloads/wl_extra.cc" "src/workloads/CMakeFiles/rigor_workloads.dir/wl_extra.cc.o" "gcc" "src/workloads/CMakeFiles/rigor_workloads.dir/wl_extra.cc.o.d"
  "/root/repo/src/workloads/wl_numeric.cc" "src/workloads/CMakeFiles/rigor_workloads.dir/wl_numeric.cc.o" "gcc" "src/workloads/CMakeFiles/rigor_workloads.dir/wl_numeric.cc.o.d"
  "/root/repo/src/workloads/wl_oo.cc" "src/workloads/CMakeFiles/rigor_workloads.dir/wl_oo.cc.o" "gcc" "src/workloads/CMakeFiles/rigor_workloads.dir/wl_oo.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/rigor_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/rigor_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/rigor_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rigor_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
