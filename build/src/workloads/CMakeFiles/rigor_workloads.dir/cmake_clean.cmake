file(REMOVE_RECURSE
  "CMakeFiles/rigor_workloads.dir/wl_data.cc.o"
  "CMakeFiles/rigor_workloads.dir/wl_data.cc.o.d"
  "CMakeFiles/rigor_workloads.dir/wl_extra.cc.o"
  "CMakeFiles/rigor_workloads.dir/wl_extra.cc.o.d"
  "CMakeFiles/rigor_workloads.dir/wl_numeric.cc.o"
  "CMakeFiles/rigor_workloads.dir/wl_numeric.cc.o.d"
  "CMakeFiles/rigor_workloads.dir/wl_oo.cc.o"
  "CMakeFiles/rigor_workloads.dir/wl_oo.cc.o.d"
  "CMakeFiles/rigor_workloads.dir/workloads.cc.o"
  "CMakeFiles/rigor_workloads.dir/workloads.cc.o.d"
  "librigor_workloads.a"
  "librigor_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rigor_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
