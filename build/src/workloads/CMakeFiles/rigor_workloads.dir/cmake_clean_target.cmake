file(REMOVE_RECURSE
  "librigor_workloads.a"
)
