# Empty compiler generated dependencies file for rigor_uarch.
# This may be replaced when dependencies are built.
