
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch.cc" "src/uarch/CMakeFiles/rigor_uarch.dir/branch.cc.o" "gcc" "src/uarch/CMakeFiles/rigor_uarch.dir/branch.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/uarch/CMakeFiles/rigor_uarch.dir/cache.cc.o" "gcc" "src/uarch/CMakeFiles/rigor_uarch.dir/cache.cc.o.d"
  "/root/repo/src/uarch/counters.cc" "src/uarch/CMakeFiles/rigor_uarch.dir/counters.cc.o" "gcc" "src/uarch/CMakeFiles/rigor_uarch.dir/counters.cc.o.d"
  "/root/repo/src/uarch/perf_model.cc" "src/uarch/CMakeFiles/rigor_uarch.dir/perf_model.cc.o" "gcc" "src/uarch/CMakeFiles/rigor_uarch.dir/perf_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/rigor_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rigor_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
