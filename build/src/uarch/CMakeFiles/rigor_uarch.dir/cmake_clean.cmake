file(REMOVE_RECURSE
  "CMakeFiles/rigor_uarch.dir/branch.cc.o"
  "CMakeFiles/rigor_uarch.dir/branch.cc.o.d"
  "CMakeFiles/rigor_uarch.dir/cache.cc.o"
  "CMakeFiles/rigor_uarch.dir/cache.cc.o.d"
  "CMakeFiles/rigor_uarch.dir/counters.cc.o"
  "CMakeFiles/rigor_uarch.dir/counters.cc.o.d"
  "CMakeFiles/rigor_uarch.dir/perf_model.cc.o"
  "CMakeFiles/rigor_uarch.dir/perf_model.cc.o.d"
  "librigor_uarch.a"
  "librigor_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rigor_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
