file(REMOVE_RECURSE
  "librigor_uarch.a"
)
