file(REMOVE_RECURSE
  "CMakeFiles/rigor_support.dir/csv.cc.o"
  "CMakeFiles/rigor_support.dir/csv.cc.o.d"
  "CMakeFiles/rigor_support.dir/json.cc.o"
  "CMakeFiles/rigor_support.dir/json.cc.o.d"
  "CMakeFiles/rigor_support.dir/logging.cc.o"
  "CMakeFiles/rigor_support.dir/logging.cc.o.d"
  "CMakeFiles/rigor_support.dir/rng.cc.o"
  "CMakeFiles/rigor_support.dir/rng.cc.o.d"
  "CMakeFiles/rigor_support.dir/str.cc.o"
  "CMakeFiles/rigor_support.dir/str.cc.o.d"
  "CMakeFiles/rigor_support.dir/table.cc.o"
  "CMakeFiles/rigor_support.dir/table.cc.o.d"
  "librigor_support.a"
  "librigor_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rigor_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
