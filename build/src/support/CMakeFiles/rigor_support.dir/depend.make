# Empty dependencies file for rigor_support.
# This may be replaced when dependencies are built.
