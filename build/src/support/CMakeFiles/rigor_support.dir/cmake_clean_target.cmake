file(REMOVE_RECURSE
  "librigor_support.a"
)
