# Empty dependencies file for rigor_stats.
# This may be replaced when dependencies are built.
