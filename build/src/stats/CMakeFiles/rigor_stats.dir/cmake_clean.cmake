file(REMOVE_RECURSE
  "CMakeFiles/rigor_stats.dir/ci.cc.o"
  "CMakeFiles/rigor_stats.dir/ci.cc.o.d"
  "CMakeFiles/rigor_stats.dir/descriptive.cc.o"
  "CMakeFiles/rigor_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/rigor_stats.dir/distributions.cc.o"
  "CMakeFiles/rigor_stats.dir/distributions.cc.o.d"
  "CMakeFiles/rigor_stats.dir/hierarchy.cc.o"
  "CMakeFiles/rigor_stats.dir/hierarchy.cc.o.d"
  "CMakeFiles/rigor_stats.dir/steady_state.cc.o"
  "CMakeFiles/rigor_stats.dir/steady_state.cc.o.d"
  "CMakeFiles/rigor_stats.dir/tests.cc.o"
  "CMakeFiles/rigor_stats.dir/tests.cc.o.d"
  "librigor_stats.a"
  "librigor_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rigor_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
