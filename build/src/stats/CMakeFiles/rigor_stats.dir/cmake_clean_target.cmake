file(REMOVE_RECURSE
  "librigor_stats.a"
)
