
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/analysis.cc" "src/harness/CMakeFiles/rigor_harness.dir/analysis.cc.o" "gcc" "src/harness/CMakeFiles/rigor_harness.dir/analysis.cc.o.d"
  "/root/repo/src/harness/envcheck.cc" "src/harness/CMakeFiles/rigor_harness.dir/envcheck.cc.o" "gcc" "src/harness/CMakeFiles/rigor_harness.dir/envcheck.cc.o.d"
  "/root/repo/src/harness/measurement.cc" "src/harness/CMakeFiles/rigor_harness.dir/measurement.cc.o" "gcc" "src/harness/CMakeFiles/rigor_harness.dir/measurement.cc.o.d"
  "/root/repo/src/harness/noise.cc" "src/harness/CMakeFiles/rigor_harness.dir/noise.cc.o" "gcc" "src/harness/CMakeFiles/rigor_harness.dir/noise.cc.o.d"
  "/root/repo/src/harness/report.cc" "src/harness/CMakeFiles/rigor_harness.dir/report.cc.o" "gcc" "src/harness/CMakeFiles/rigor_harness.dir/report.cc.o.d"
  "/root/repo/src/harness/runner.cc" "src/harness/CMakeFiles/rigor_harness.dir/runner.cc.o" "gcc" "src/harness/CMakeFiles/rigor_harness.dir/runner.cc.o.d"
  "/root/repo/src/harness/sequential.cc" "src/harness/CMakeFiles/rigor_harness.dir/sequential.cc.o" "gcc" "src/harness/CMakeFiles/rigor_harness.dir/sequential.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/rigor_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/rigor_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rigor_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/rigor_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rigor_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
