# Empty compiler generated dependencies file for rigor_harness.
# This may be replaced when dependencies are built.
