file(REMOVE_RECURSE
  "librigor_harness.a"
)
