file(REMOVE_RECURSE
  "CMakeFiles/rigor_harness.dir/analysis.cc.o"
  "CMakeFiles/rigor_harness.dir/analysis.cc.o.d"
  "CMakeFiles/rigor_harness.dir/envcheck.cc.o"
  "CMakeFiles/rigor_harness.dir/envcheck.cc.o.d"
  "CMakeFiles/rigor_harness.dir/measurement.cc.o"
  "CMakeFiles/rigor_harness.dir/measurement.cc.o.d"
  "CMakeFiles/rigor_harness.dir/noise.cc.o"
  "CMakeFiles/rigor_harness.dir/noise.cc.o.d"
  "CMakeFiles/rigor_harness.dir/report.cc.o"
  "CMakeFiles/rigor_harness.dir/report.cc.o.d"
  "CMakeFiles/rigor_harness.dir/runner.cc.o"
  "CMakeFiles/rigor_harness.dir/runner.cc.o.d"
  "CMakeFiles/rigor_harness.dir/sequential.cc.o"
  "CMakeFiles/rigor_harness.dir/sequential.cc.o.d"
  "librigor_harness.a"
  "librigor_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rigor_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
