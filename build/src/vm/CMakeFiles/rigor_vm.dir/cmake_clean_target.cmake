file(REMOVE_RECURSE
  "librigor_vm.a"
)
