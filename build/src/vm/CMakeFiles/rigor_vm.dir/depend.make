# Empty dependencies file for rigor_vm.
# This may be replaced when dependencies are built.
