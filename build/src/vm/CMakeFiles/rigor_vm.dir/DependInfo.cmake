
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/builtins.cc" "src/vm/CMakeFiles/rigor_vm.dir/builtins.cc.o" "gcc" "src/vm/CMakeFiles/rigor_vm.dir/builtins.cc.o.d"
  "/root/repo/src/vm/code.cc" "src/vm/CMakeFiles/rigor_vm.dir/code.cc.o" "gcc" "src/vm/CMakeFiles/rigor_vm.dir/code.cc.o.d"
  "/root/repo/src/vm/compiler.cc" "src/vm/CMakeFiles/rigor_vm.dir/compiler.cc.o" "gcc" "src/vm/CMakeFiles/rigor_vm.dir/compiler.cc.o.d"
  "/root/repo/src/vm/interp.cc" "src/vm/CMakeFiles/rigor_vm.dir/interp.cc.o" "gcc" "src/vm/CMakeFiles/rigor_vm.dir/interp.cc.o.d"
  "/root/repo/src/vm/lexer.cc" "src/vm/CMakeFiles/rigor_vm.dir/lexer.cc.o" "gcc" "src/vm/CMakeFiles/rigor_vm.dir/lexer.cc.o.d"
  "/root/repo/src/vm/parser.cc" "src/vm/CMakeFiles/rigor_vm.dir/parser.cc.o" "gcc" "src/vm/CMakeFiles/rigor_vm.dir/parser.cc.o.d"
  "/root/repo/src/vm/value.cc" "src/vm/CMakeFiles/rigor_vm.dir/value.cc.o" "gcc" "src/vm/CMakeFiles/rigor_vm.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rigor_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
