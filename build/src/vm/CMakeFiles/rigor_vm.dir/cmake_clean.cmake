file(REMOVE_RECURSE
  "CMakeFiles/rigor_vm.dir/builtins.cc.o"
  "CMakeFiles/rigor_vm.dir/builtins.cc.o.d"
  "CMakeFiles/rigor_vm.dir/code.cc.o"
  "CMakeFiles/rigor_vm.dir/code.cc.o.d"
  "CMakeFiles/rigor_vm.dir/compiler.cc.o"
  "CMakeFiles/rigor_vm.dir/compiler.cc.o.d"
  "CMakeFiles/rigor_vm.dir/interp.cc.o"
  "CMakeFiles/rigor_vm.dir/interp.cc.o.d"
  "CMakeFiles/rigor_vm.dir/lexer.cc.o"
  "CMakeFiles/rigor_vm.dir/lexer.cc.o.d"
  "CMakeFiles/rigor_vm.dir/parser.cc.o"
  "CMakeFiles/rigor_vm.dir/parser.cc.o.d"
  "CMakeFiles/rigor_vm.dir/value.cc.o"
  "CMakeFiles/rigor_vm.dir/value.cc.o.d"
  "librigor_vm.a"
  "librigor_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rigor_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
