# Empty dependencies file for rigor_tests.
# This may be replaced when dependencies are built.
