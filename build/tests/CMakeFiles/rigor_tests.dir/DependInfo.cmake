
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/envcheck_test.cc" "tests/CMakeFiles/rigor_tests.dir/envcheck_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/envcheck_test.cc.o.d"
  "/root/repo/tests/harness_test.cc" "tests/CMakeFiles/rigor_tests.dir/harness_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/harness_test.cc.o.d"
  "/root/repo/tests/sequential_test.cc" "tests/CMakeFiles/rigor_tests.dir/sequential_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/sequential_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/rigor_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/steady_state_test.cc" "tests/CMakeFiles/rigor_tests.dir/steady_state_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/steady_state_test.cc.o.d"
  "/root/repo/tests/support_test.cc" "tests/CMakeFiles/rigor_tests.dir/support_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/support_test.cc.o.d"
  "/root/repo/tests/uarch_test.cc" "tests/CMakeFiles/rigor_tests.dir/uarch_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/uarch_test.cc.o.d"
  "/root/repo/tests/vm_differential_test.cc" "tests/CMakeFiles/rigor_tests.dir/vm_differential_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/vm_differential_test.cc.o.d"
  "/root/repo/tests/vm_exceptions_test.cc" "tests/CMakeFiles/rigor_tests.dir/vm_exceptions_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/vm_exceptions_test.cc.o.d"
  "/root/repo/tests/vm_interp_test.cc" "tests/CMakeFiles/rigor_tests.dir/vm_interp_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/vm_interp_test.cc.o.d"
  "/root/repo/tests/vm_jit_test.cc" "tests/CMakeFiles/rigor_tests.dir/vm_jit_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/vm_jit_test.cc.o.d"
  "/root/repo/tests/vm_lexer_test.cc" "tests/CMakeFiles/rigor_tests.dir/vm_lexer_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/vm_lexer_test.cc.o.d"
  "/root/repo/tests/vm_parser_compiler_test.cc" "tests/CMakeFiles/rigor_tests.dir/vm_parser_compiler_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/vm_parser_compiler_test.cc.o.d"
  "/root/repo/tests/vm_value_test.cc" "tests/CMakeFiles/rigor_tests.dir/vm_value_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/vm_value_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/rigor_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/rigor_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/rigor_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rigor_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/rigor_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/rigor_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rigor_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rigor_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
