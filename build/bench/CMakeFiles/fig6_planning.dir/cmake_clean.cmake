file(REMOVE_RECURSE
  "CMakeFiles/fig6_planning.dir/fig6_planning.cc.o"
  "CMakeFiles/fig6_planning.dir/fig6_planning.cc.o.d"
  "fig6_planning"
  "fig6_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
