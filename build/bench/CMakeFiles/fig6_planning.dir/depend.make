# Empty dependencies file for fig6_planning.
# This may be replaced when dependencies are built.
