# Empty compiler generated dependencies file for fig2_variability.
# This may be replaced when dependencies are built.
