# Empty compiler generated dependencies file for table4_runtimes.
# This may be replaced when dependencies are built.
