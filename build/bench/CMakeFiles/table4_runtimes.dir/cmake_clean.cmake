file(REMOVE_RECURSE
  "CMakeFiles/table4_runtimes.dir/table4_runtimes.cc.o"
  "CMakeFiles/table4_runtimes.dir/table4_runtimes.cc.o.d"
  "table4_runtimes"
  "table4_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
