file(REMOVE_RECURSE
  "CMakeFiles/ablation_jit_threshold.dir/ablation_jit_threshold.cc.o"
  "CMakeFiles/ablation_jit_threshold.dir/ablation_jit_threshold.cc.o.d"
  "ablation_jit_threshold"
  "ablation_jit_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_jit_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
