file(REMOVE_RECURSE
  "CMakeFiles/table2_warmup.dir/table2_warmup.cc.o"
  "CMakeFiles/table2_warmup.dir/table2_warmup.cc.o.d"
  "table2_warmup"
  "table2_warmup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_warmup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
