
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_warmup.cc" "bench/CMakeFiles/table2_warmup.dir/table2_warmup.cc.o" "gcc" "bench/CMakeFiles/table2_warmup.dir/table2_warmup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/rigor_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rigor_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/rigor_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rigor_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/rigor_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rigor_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
