# Empty dependencies file for table2_warmup.
# This may be replaced when dependencies are built.
