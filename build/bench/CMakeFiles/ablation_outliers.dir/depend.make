# Empty dependencies file for ablation_outliers.
# This may be replaced when dependencies are built.
