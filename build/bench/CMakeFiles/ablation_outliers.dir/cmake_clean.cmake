file(REMOVE_RECURSE
  "CMakeFiles/ablation_outliers.dir/ablation_outliers.cc.o"
  "CMakeFiles/ablation_outliers.dir/ablation_outliers.cc.o.d"
  "ablation_outliers"
  "ablation_outliers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_outliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
