# Empty compiler generated dependencies file for fig1_warmup_curves.
# This may be replaced when dependencies are built.
