file(REMOVE_RECURSE
  "CMakeFiles/fig1_warmup_curves.dir/fig1_warmup_curves.cc.o"
  "CMakeFiles/fig1_warmup_curves.dir/fig1_warmup_curves.cc.o.d"
  "fig1_warmup_curves"
  "fig1_warmup_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_warmup_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
