# Empty compiler generated dependencies file for table3_methodology.
# This may be replaced when dependencies are built.
