file(REMOVE_RECURSE
  "CMakeFiles/table3_methodology.dir/table3_methodology.cc.o"
  "CMakeFiles/table3_methodology.dir/table3_methodology.cc.o.d"
  "table3_methodology"
  "table3_methodology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_methodology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
