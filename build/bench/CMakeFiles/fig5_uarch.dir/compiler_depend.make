# Empty compiler generated dependencies file for fig5_uarch.
# This may be replaced when dependencies are built.
