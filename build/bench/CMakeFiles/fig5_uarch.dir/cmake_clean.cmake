file(REMOVE_RECURSE
  "CMakeFiles/fig5_uarch.dir/fig5_uarch.cc.o"
  "CMakeFiles/fig5_uarch.dir/fig5_uarch.cc.o.d"
  "fig5_uarch"
  "fig5_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
