file(REMOVE_RECURSE
  "CMakeFiles/fig7_budget.dir/fig7_budget.cc.o"
  "CMakeFiles/fig7_budget.dir/fig7_budget.cc.o.d"
  "fig7_budget"
  "fig7_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
