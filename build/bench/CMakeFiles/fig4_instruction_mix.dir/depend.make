# Empty dependencies file for fig4_instruction_mix.
# This may be replaced when dependencies are built.
