file(REMOVE_RECURSE
  "CMakeFiles/fig4_instruction_mix.dir/fig4_instruction_mix.cc.o"
  "CMakeFiles/fig4_instruction_mix.dir/fig4_instruction_mix.cc.o.d"
  "fig4_instruction_mix"
  "fig4_instruction_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_instruction_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
